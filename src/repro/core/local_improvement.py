"""The local improvement heuristic (the paper's §4.3).

Given a join order, consider the first ``c`` relations (a *cluster*) and
replace them by the best valid permutation of the same relations; slide the
window forward by ``c - o`` positions (``o`` is the *overlap*) and repeat
until the end of the order; iterate passes until a pass changes nothing.
The strategy never makes the order worse, and the paper's feasible
strategies are, by decreasing cost and power: (5,4), (4,3), (3,2), (2,1),
(2,0).

Each candidate permutation is costed with a full plan evaluation (charged
to the budget), so a pass of ``(c, o)`` costs about
``c! * N / (c - o)`` plan evaluations — the factorial blow-up that stops
the paper at ``c = 5``.
"""

from __future__ import annotations

from itertools import permutations

from repro.catalog.join_graph import JoinGraph
from repro.core.budget import BudgetExhausted
from repro.core.state import Evaluation, Evaluator
from repro.obs import events as obs_events
from repro.plans.validity import is_valid_order

#: The paper's feasible strategies, strongest (most expensive) first.
FEASIBLE_STRATEGIES: tuple[tuple[int, int], ...] = (
    (5, 4),
    (4, 3),
    (3, 2),
    (2, 1),
    (2, 0),
)

_FACTORIALS = {2: 2, 3: 6, 4: 24, 5: 120}


def check_strategy(cluster_size: int, overlap: int, n_relations: int) -> None:
    """Validate a ``(c, o)`` strategy against the paper's constraints."""
    if not 2 <= cluster_size <= n_relations:
        raise ValueError(
            f"cluster size must be in [2, {n_relations}], got {cluster_size}"
        )
    if not 0 <= overlap <= cluster_size - 1:
        raise ValueError(
            f"overlap must be in [0, {cluster_size - 1}], got {overlap}"
        )


def pass_cost_estimate(
    cluster_size: int, overlap: int, n_relations: int
) -> float:
    """Approximate plan-evaluation units for one pass of ``(c, o)``."""
    step = cluster_size - overlap
    windows = max(1, (n_relations - cluster_size) // step + 1)
    permutations_per_window = _FACTORIALS.get(cluster_size, 1)
    n_joins = max(1, n_relations - 1)
    return windows * permutations_per_window * float(n_joins)


def best_strategy_for_budget(
    remaining_units: float, n_relations: int
) -> tuple[int, int] | None:
    """The strongest feasible ``(c, o)`` whose single pass fits the budget.

    Mirrors the paper's rule: run one pass of (5,4) if there is time for
    it, else one pass of (4,3), and so on; ``None`` when even (2,0) does
    not fit.
    """
    for cluster_size, overlap in FEASIBLE_STRATEGIES:
        if cluster_size > n_relations:
            continue
        if pass_cost_estimate(cluster_size, overlap, n_relations) <= remaining_units:
            return cluster_size, overlap
    return None


def improve_pass(
    start: Evaluation,
    evaluator: Evaluator,
    cluster_size: int,
    overlap: int,
) -> Evaluation:
    """One left-to-right pass of cluster-wise exhaustive improvement.

    Raises :class:`~repro.core.budget.BudgetExhausted` mid-pass when the
    budget runs out; everything evaluated so far is recorded.
    """
    graph: JoinGraph = evaluator.graph
    tracer = evaluator.tracer
    n = graph.n_relations
    check_strategy(cluster_size, overlap, n)
    current = start
    step = cluster_size - overlap
    position = 0
    while position < n - 1:
        window_size = min(cluster_size, n - position)
        if window_size < 2:
            break
        # All candidates in this window share the prefix before it; prime
        # the delta evaluator's anchor on the current order so each
        # permutation re-costs only from ``position`` onward, bounded by
        # the best cost seen in the window.
        evaluator.prime(current.order)
        window = current.order.positions[position : position + window_size]
        best_in_window = current
        if evaluator.supports_batch:
            # The window's candidate set is deterministic (no RNG), so the
            # whole window prices in one kernel sweep; consuming in
            # enumeration order keeps charges and the tightening bound
            # identical to the scalar loop.
            candidates = [
                candidate
                for candidate_window in permutations(window)
                if candidate_window != window
                for candidate in (
                    current.order.replace_segment(position, candidate_window),
                )
                if is_valid_order(candidate, graph)
            ]
            if candidates:
                costs, saturations = evaluator.price_batch(
                    [candidate.positions for candidate in candidates]
                )
                for index, candidate in enumerate(candidates):
                    cost = evaluator.consume(
                        candidate,
                        costs[index],
                        saturations[index],
                        upper_bound=best_in_window.cost,
                    )
                    if cost is not None and cost < best_in_window.cost:
                        best_in_window = Evaluation(candidate, cost)
        else:
            for candidate_window in permutations(window):
                if candidate_window == window:
                    continue
                candidate = current.order.replace_segment(
                    position, candidate_window
                )
                if not is_valid_order(candidate, graph):
                    continue
                cost = evaluator.evaluate_candidate(
                    candidate,
                    upper_bound=best_in_window.cost,
                    first_changed=position,
                )
                if cost is not None and cost < best_in_window.cost:
                    best_in_window = Evaluation(candidate, cost)
        if tracer.enabled and best_in_window is not current:
            tracer.emit(
                obs_events.MOVE,
                outcome=obs_events.ACCEPTED,
                cost=best_in_window.cost,
                delta=best_in_window.cost - current.cost,
                window=position,
            )
            tracer.metrics.inc("moves_accepted")
        current = best_in_window
        position += step
    return current


def local_improve(
    start: Evaluation,
    evaluator: Evaluator,
    cluster_size: int,
    overlap: int,
    max_passes: int | None = None,
) -> Evaluation:
    """Run passes of ``(cluster_size, overlap)`` until a fixpoint.

    Non-overlapping strategies (``o = 0``) need a single pass, as the paper
    notes; overlapping ones repeat until no change (or ``max_passes``).
    Budget exhaustion ends the improvement and returns the best so far.
    """
    current = start
    passes = 0
    tracer = evaluator.tracer
    if tracer.enabled:
        tracer.phase_start(
            "local_improve", cluster=cluster_size, overlap=overlap
        )
    try:
        while True:
            improved = improve_pass(current, evaluator, cluster_size, overlap)
            passes += 1
            no_change = improved.order == current.order
            current = improved
            if overlap == 0 or no_change:
                break
            if max_passes is not None and passes >= max_passes:
                break
    except BudgetExhausted:
        if evaluator.best is not None and evaluator.best.cost < current.cost:
            current = evaluator.best
    finally:
        if tracer.enabled:
            tracer.phase_end("local_improve", passes=passes)
    return current
