"""Iterative improvement over the bushy plan space.

Together with :mod:`repro.plans.bushy`, this answers (at reproduction
scale) the paper's open problem: *is the restriction to outer linear
join trees justified?*  The move set is the classic transformation set
over join trees:

* **commute** — swap an internal node's children (``A ⋈ B → B ⋈ A``);
* **rotate left / rotate right** — reassociate
  (``(A ⋈ B) ⋈ C ↔ A ⋈ (B ⋈ C)``);

which together make the whole valid bushy space reachable.  Moves that
would create a cross product are rejected and redrawn, mirroring the
linear move set's validity filtering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph
from repro.core.budget import Budget, BudgetExhausted
from repro.cost.base import CostModel
from repro.plans.bushy import (
    BushyTree,
    bushy_cost,
    is_valid_bushy,
    join,
    random_bushy_tree,
)


class NoBushyMove(Exception):
    """No valid bushy transformation could be drawn."""


def _replace(tree: BushyTree, target: BushyTree, replacement: BushyTree) -> BushyTree:
    """A copy of ``tree`` with the node ``target`` (by identity) replaced."""
    if tree is target:
        return replacement
    if tree.is_leaf:
        return tree
    new_left = _replace(tree.left, target, replacement)
    new_right = _replace(tree.right, target, replacement)
    if new_left is tree.left and new_right is tree.right:
        return tree
    return join(new_left, new_right)


def _transformations(node: BushyTree) -> list[BushyTree]:
    """Every single-step transformation of ``node`` (may be invalid)."""
    results = [join(node.right, node.left)]  # commute
    if not node.left.is_leaf:
        # rotate right: (A B) C -> A (B C)
        results.append(join(node.left.left, join(node.left.right, node.right)))
    if not node.right.is_leaf:
        # rotate left: A (B C) -> (A B) C
        results.append(join(join(node.left, node.right.left), node.right.right))
    return results


def random_bushy_neighbor(
    tree: BushyTree,
    graph: JoinGraph,
    rng: random.Random,
    max_tries: int = 64,
) -> BushyTree:
    """A random valid neighbor under {commute, rotate left/right}."""
    internal = list(tree.internal_nodes())
    if not internal:
        raise NoBushyMove("a single-leaf tree has no neighbors")
    for _ in range(max_tries):
        node = rng.choice(internal)
        candidate_node = rng.choice(_transformations(node))
        candidate = _replace(tree, node, candidate_node)
        if is_valid_bushy(candidate, graph):
            return candidate
    raise NoBushyMove(f"no valid bushy neighbor in {max_tries} tries")


@dataclass(frozen=True)
class BushyEvaluation:
    tree: BushyTree
    cost: float


def bushy_improvement_run(
    start: BushyTree,
    graph: JoinGraph,
    model: CostModel,
    budget: Budget,
    rng: random.Random,
    patience: int | None = None,
) -> BushyEvaluation:
    """One iterative-improvement run in the bushy space.

    Charges the budget one unit per join-cost evaluation (``n_joins``
    per tree evaluation), like the linear evaluator.
    """
    if patience is None:
        patience = max(16, 2 * graph.n_relations)
    charge = float(graph.n_joins)
    budget.charge(charge)
    current = BushyEvaluation(start, bushy_cost(start, graph, model))
    failures = 0
    while failures < patience:
        try:
            neighbor = random_bushy_neighbor(current.tree, graph, rng)
        except NoBushyMove:
            break
        try:
            budget.charge(charge)
        except BudgetExhausted:
            # Anytime behaviour: the walk ends where the budget does.
            return current
        cost = bushy_cost(neighbor, graph, model)
        if cost < current.cost:
            current = BushyEvaluation(neighbor, cost)
            failures = 0
        else:
            failures += 1
    return current


def bushy_iterative_improvement(
    graph: JoinGraph,
    model: CostModel,
    budget: Budget,
    rng: random.Random,
    patience: int | None = None,
) -> BushyEvaluation:
    """Multi-start II over random valid bushy trees; best local minimum."""
    best: BushyEvaluation | None = None
    try:
        while not budget.exhausted:
            start = random_bushy_tree(graph, rng)
            local = bushy_improvement_run(
                start, graph, model, budget, rng, patience
            )
            if best is None or local.cost < best.cost:
                best = local
    except BudgetExhausted:
        pass
    if best is None:
        raise BudgetExhausted("budget expired before any bushy tree was costed")
    return best
