"""Budget-charging plan evaluation and best-solution tracking.

Every optimizer funnels its cost evaluations through an :class:`Evaluator`,
which charges the budget (one unit per join evaluated), keeps the best
solution seen, and records the *trajectory* of improvements as
``(units_spent, best_cost)`` pairs.  The trajectory is what makes one run
at the largest time limit yield the results for every smaller limit — the
same trick the paper's sweeps rely on.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph
from repro.core.budget import Budget
from repro.cost.base import CostModel
from repro.plans.join_order import JoinOrder


@dataclass(frozen=True)
class Evaluation:
    """A join order together with its evaluated cost."""

    order: JoinOrder
    cost: float


class TargetReached(Exception):
    """The evaluator found a solution at or below its target cost.

    Used for the paper's early-stopping rule: "the optimizer can stop if
    it obtains a solution whose cost is sufficiently close to a lower
    bound on the cost of the optimal solution."
    """


class Evaluator:
    """Charges the budget for plan evaluations and tracks the best plan.

    ``target_cost``, when set, raises :class:`TargetReached` as soon as a
    solution at or below it has been recorded — optimizers treat it like
    budget exhaustion and return the best solution found.
    """

    def __init__(
        self,
        graph: JoinGraph,
        model: CostModel,
        budget: Budget,
        target_cost: float | None = None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.budget = budget
        self.target_cost = target_cost
        self.n_evaluations = 0
        self.best: Evaluation | None = None
        self.trajectory: list[tuple[float, float]] = []

    def evaluate(self, order: JoinOrder) -> float:
        """Cost of ``order``; charges ``n_joins`` units; updates the best.

        Raises :class:`~repro.core.budget.BudgetExhausted` when the budget
        cannot pay for the evaluation, and :class:`TargetReached` when the
        early-stopping target has been met.
        """
        self.budget.charge(float(self.graph.n_joins))
        cost = self.model.plan_cost(order, self.graph)
        self.n_evaluations += 1
        self._record(order, cost)
        if (
            self.target_cost is not None
            and self.best is not None
            and self.best.cost <= self.target_cost
        ):
            raise TargetReached(
                f"solution cost {self.best.cost:.6g} at or below target "
                f"{self.target_cost:.6g}"
            )
        return cost

    def _record(self, order: JoinOrder, cost: float) -> None:
        if not math.isfinite(cost):
            # A NaN/inf cost must never become (or poison) the best
            # solution: NaN in particular compares false against
            # everything and would freeze ``best`` forever.
            return
        if self.best is None or cost < self.best.cost:
            self.best = Evaluation(order, cost)
            self.trajectory.append((self.budget.spent, cost))

    def best_cost_within(self, units: float) -> float | None:
        """Best cost found by the time ``units`` had been spent.

        ``None`` when no solution had been evaluated that early.
        """
        index = bisect_right(self.trajectory, units, key=lambda point: point[0])
        if index == 0:
            return None
        return self.trajectory[index - 1][1]
