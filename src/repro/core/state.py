"""Budget-charging plan evaluation and best-solution tracking.

Every optimizer funnels its cost evaluations through an :class:`Evaluator`,
which charges the budget (one unit per join evaluated), keeps the best
solution seen, and records the *trajectory* of improvements as
``(units_spent, best_cost)`` pairs.  The trajectory is what makes one run
at the largest time limit yield the results for every smaller limit — the
same trick the paper's sweeps rely on.

Two evaluators share that contract:

* :class:`Evaluator` — the reference oracle: every candidate is priced by
  a full :meth:`~repro.cost.base.CostModel.plan_cost` walk.
* :class:`DeltaEvaluator` — the production path: candidates are priced by
  the prefix-cached :class:`~repro.cost.incremental.IncrementalEvaluator`,
  with optional bound pruning, and the budget can be charged either per
  plan (the paper's published accounting) or per join actually evaluated.
* :class:`BatchEvaluator` — the array path: whole candidate batches are
  priced by the vectorized kernel
  (:class:`~repro.cost.vectorized.ArrayContext`), then adopted one by one
  through :meth:`BatchEvaluator.consume` so budget charges, best/trajectory
  updates, and early-stopping all happen in the scalar order.

The *candidate protocol* (:meth:`Evaluator.evaluate_candidate`,
:meth:`Evaluator.commit_candidate`, :meth:`Evaluator.prime`) is what the
search loops call; on the base evaluator it degrades to plain
``evaluate``, so every strategy runs unchanged on either evaluator.  The
*batch protocol* (:meth:`BatchEvaluator.price_batch` +
:meth:`BatchEvaluator.consume`) is opt-in: loops check the evaluator's
``supports_batch`` flag and fall back to the candidate protocol otherwise.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections.abc import Sequence
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph
from repro.core.budget import Budget, BudgetExhausted
from repro.cost.base import CostModel
from repro.cost.incremental import IncrementalEvaluator, supports_incremental
from repro.cost.vectorized import ArrayContext
from repro.obs import events as obs_events
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.plans.join_order import JoinOrder

#: Budget-accounting modes accepted by :class:`DeltaEvaluator`.
PER_PLAN = "per-plan"
PER_JOIN = "per-join"
CHARGE_MODES = (PER_PLAN, PER_JOIN)


@dataclass(frozen=True)
class Evaluation:
    """A join order together with its evaluated cost."""

    order: JoinOrder
    cost: float


class TargetReached(Exception):
    """The evaluator found a solution at or below its target cost.

    Used for the paper's early-stopping rule: "the optimizer can stop if
    it obtains a solution whose cost is sufficiently close to a lower
    bound on the cost of the optimal solution."
    """


class Evaluator:
    """Charges the budget for plan evaluations and tracks the best plan.

    ``target_cost``, when set, raises :class:`TargetReached` as soon as a
    solution at or below it has been recorded — optimizers treat it like
    budget exhaustion and return the best solution found.
    """

    #: Whether the batch protocol (``price_batch``/``consume``) is
    #: available; search loops branch on this one attribute.
    supports_batch = False

    def __init__(
        self,
        graph: JoinGraph,
        model: CostModel,
        budget: Budget,
        target_cost: float | None = None,
        record_floor: float | None = None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.budget = budget
        self.target_cost = target_cost
        #: A globally inherited upper bound on the best *relevant* cost —
        #: the parallel orchestrator sets this to its deterministic
        #: pre-pass floor so every restart prunes start states that price
        #: above a plan the merge already holds.  Search loops may pass it
        #: as ``upper_bound`` wherever a candidate pricier than the floor
        #: cannot matter; ``None`` (the default) changes nothing.
        self.record_floor = record_floor
        self.n_evaluations = 0
        self.best: Evaluation | None = None
        self.trajectory: list[tuple[float, float]] = []
        #: Observability backend.  The default is the no-op
        #: :data:`~repro.obs.tracer.NULL_TRACER`; every hook below is
        #: guarded by one ``tracer.enabled`` attribute check, so tracing
        #: costs nothing when off and never perturbs the run when on
        #: (events read the budget clock, they never charge it).
        self.tracer: Tracer = NULL_TRACER

    def evaluate(self, order: JoinOrder) -> float:
        """Cost of ``order``; charges ``n_joins`` units; updates the best.

        Raises :class:`~repro.core.budget.BudgetExhausted` when the budget
        cannot pay for the evaluation, and :class:`TargetReached` when the
        early-stopping target has been met.
        """
        self.budget.charge(float(self.graph.n_joins))
        cost = self.model.plan_cost(order, self.graph)
        self.n_evaluations += 1
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.inc("evaluations")
            metrics.inc("joins_walked", float(self.graph.n_joins))
            metrics.inc("joins_charged", float(self.graph.n_joins))
        self._record(order, cost)
        self._check_target()
        return cost

    def _check_target(self) -> None:
        if (
            self.target_cost is not None
            and self.best is not None
            and self.best.cost <= self.target_cost
        ):
            raise TargetReached(
                f"solution cost {self.best.cost:.6g} at or below target "
                f"{self.target_cost:.6g}"
            )

    def evaluate_candidate(
        self,
        order: JoinOrder,
        upper_bound: float | None = None,
        first_changed: int | None = None,
    ) -> float | None:
        """Price a *candidate* the caller may or may not adopt.

        The reference evaluator ignores both hints and always returns the
        full cost.  :class:`DeltaEvaluator` overrides this with prefix
        reuse and bound pruning — ``None`` means the running total
        exceeded ``upper_bound``, which under a strictly-less-than
        acceptance test is equivalent to rejection.  ``first_changed`` is
        the move's first changed position, an advisory cap on prefix
        sharing.
        """
        return self.evaluate(order)

    def commit_candidate(self, order: JoinOrder) -> None:
        """Tell the evaluator the last candidate was accepted (no-op here).

        :class:`DeltaEvaluator` re-anchors its prefix cache on the
        accepted order without re-walking it.
        """

    def prime(self, order: JoinOrder) -> None:
        """Declare ``order`` the walk's current state (no-op here).

        Unlike ``evaluate``, priming charges nothing and records nothing —
        it only lets :class:`DeltaEvaluator` anchor its prefix cache when
        the caller already knows the current state's cost.
        """

    def _record(self, order: JoinOrder, cost: float) -> None:
        if not math.isfinite(cost):
            # A NaN/inf cost must never become (or poison) the best
            # solution: NaN in particular compares false against
            # everything and would freeze ``best`` forever.
            return
        if self.best is None or cost < self.best.cost:
            self.best = Evaluation(order, cost)
            self.trajectory.append((self.budget.spent, cost))
            if self.tracer.enabled:
                self.tracer.emit(obs_events.BEST, cost=cost)
                self.tracer.metrics.inc("best_updates")
                self.tracer.metrics.gauge("best_cost", cost)

    def best_cost_within(self, units: float) -> float | None:
        """Best cost found by the time ``units`` had been spent.

        ``None`` when no solution had been evaluated that early.
        """
        index = bisect_right(self.trajectory, units, key=lambda point: point[0])
        if index == 0:
            return None
        return self.trajectory[index - 1][1]

    def _safe_bound(self, upper_bound: float | None) -> float | None:
        """Clamp the caller's bound so pruning can never affect ``best``.

        A pruned candidate costs strictly more than the effective bound;
        keeping that bound at or above the best recorded cost (and
        disabling pruning while nothing is recorded) guarantees the pruned
        candidate could not have become the new best — the trajectory
        stays identical to the reference oracle's.
        """
        if upper_bound is None or self.best is None:
            return None
        if upper_bound < self.best.cost:
            return self.best.cost
        return upper_bound


class DeltaEvaluator(Evaluator):
    """Evaluator backed by the prefix-cached incremental engine.

    Candidates priced through :meth:`evaluate_candidate` reuse the cost
    chain of the walk's current order up to the first changed position,
    and an ``upper_bound`` aborts the suffix walk as soon as the running
    total exceeds it.  Full (unaborted) evaluations return floats bitwise
    identical to :meth:`~repro.cost.base.CostModel.plan_cost`, so the base
    :class:`Evaluator` remains a drop-in reference oracle.

    ``charge_mode`` selects the budget accounting:

    ``"per-plan"`` (default, the compatibility mode)
        Every evaluation — even a pruned one — charges ``n_joins`` units
        up front, exactly like the reference evaluator, so published
        paper-reproduction budgets and their BudgetExhausted points are
        preserved bit for bit.
    ``"per-join"``
        Each evaluation charges the joins actually walked (floored at one
        unit so repeated evaluations of the anchor still make progress),
        after the walk.  Prefix reuse and pruning then translate into
        more candidates per budget, which is the engine's whole point.

    Pruned candidates are never recorded: the effective bound is clamped
    to at least the best recorded cost (and pruning is disabled until a
    first solution is recorded), so a pruned candidate provably could not
    have improved ``best`` — trajectories match the reference oracle's.
    The one divergence is exceptions: an aborted walk may stop before an
    overflow the full walk would surface as
    :class:`~repro.cost.cardinality.CostOverflowError`; the candidate is
    rejected either way.
    """

    def __init__(
        self,
        graph: JoinGraph,
        model: CostModel,
        budget: Budget,
        target_cost: float | None = None,
        charge_mode: str = PER_PLAN,
        record_floor: float | None = None,
    ) -> None:
        if charge_mode not in CHARGE_MODES:
            raise ValueError(
                f"unknown charge_mode {charge_mode!r}; one of {CHARGE_MODES}"
            )
        if not supports_incremental(model):
            raise ValueError(
                f"cost model {model!r} overrides plan_cost and cannot be "
                "evaluated incrementally; use the base Evaluator"
            )
        super().__init__(
            graph, model, budget, target_cost=target_cost,
            record_floor=record_floor,
        )
        self.charge_mode = charge_mode
        self.engine = IncrementalEvaluator(graph, model)
        #: Joins actually walked (full or aborted), across all evaluations.
        self.n_joins_evaluated = 0
        #: Candidates whose walk was aborted by the upper bound.
        self.n_pruned = 0

    supports = staticmethod(supports_incremental)

    def evaluate(self, order: JoinOrder) -> float:
        """Full evaluation through the engine; re-anchors the prefix cache."""
        if self.charge_mode == PER_PLAN:
            self.budget.charge(float(self.graph.n_joins))
            cost, joins = self.engine.rebase(order.positions)
        else:
            self._require_budget()
            cost, joins = self.engine.rebase(order.positions)
            self.budget.charge(max(1.0, float(joins)))
        self.n_joins_evaluated += joins
        self.n_evaluations += 1
        if self.tracer.enabled:
            self._trace_evaluation(joins, pruned=False)
        self._record(order, cost)
        self._check_target()
        return cost

    def evaluate_candidate(
        self,
        order: JoinOrder,
        upper_bound: float | None = None,
        first_changed: int | None = None,
    ) -> float | None:
        if self.charge_mode == PER_PLAN:
            self.budget.charge(float(self.graph.n_joins))
            cost, joins = self.engine.evaluate(
                order.positions, self._safe_bound(upper_bound), first_changed
            )
        else:
            self._require_budget()
            cost, joins = self.engine.evaluate(
                order.positions, self._safe_bound(upper_bound), first_changed
            )
            self.budget.charge(max(1.0, float(joins)))
        self.n_joins_evaluated += joins
        self.n_evaluations += 1
        if cost is None:
            self.n_pruned += 1
        else:
            self._record(order, cost)
        if self.tracer.enabled:
            self._trace_evaluation(joins, pruned=cost is None)
        self._check_target()
        return cost

    def _trace_evaluation(self, joins: int, pruned: bool) -> None:
        """Cold path: metric updates for one engine evaluation."""
        metrics = self.tracer.metrics
        metrics.inc("evaluations")
        metrics.inc("joins_walked", float(joins))
        metrics.inc(
            "joins_charged",
            float(self.graph.n_joins)
            if self.charge_mode == PER_PLAN
            else max(1.0, float(joins)),
        )
        if pruned:
            metrics.inc("pruned")

    def commit_candidate(self, order: JoinOrder) -> None:
        self.engine.commit(order.positions)

    def prime(self, order: JoinOrder) -> None:
        self.engine.prime(order.positions)

    def _require_budget(self) -> None:
        if self.budget.exhausted:
            raise BudgetExhausted(
                "budget exhausted before evaluation (per-join accounting)"
            )


class BatchEvaluator(Evaluator):
    """Evaluator backed by the vectorized batch kernel.

    Search loops that understand the batch protocol collect a window of
    candidate orders, price them all at once through :meth:`price_batch`
    (one :meth:`~repro.cost.vectorized.ArrayContext.batch_costs` sweep),
    and then adopt each row in the original candidate order through
    :meth:`consume`.  Splitting pricing from adoption keeps the observable
    sequence — budget charges, ``best``/trajectory updates,
    :class:`~repro.core.budget.BudgetExhausted` and :class:`TargetReached`
    points — identical to the scalar evaluators: pricing touches no shared
    state, and :meth:`consume` replays the scalar bookkeeping row by row.

    Budget accounting is per-plan only (the reference oracle's mode): the
    kernel always walks every join, so per-join accounting would gain
    nothing and the published budgets stay bit-for-bit comparable.

    A ``saturated`` row is one the kernel clamped to keep the batch
    finite where the scalar walk raises
    :class:`~repro.cost.cardinality.CostOverflowError`; :meth:`consume`
    re-dispatches such rows to the scalar model so callers see the genuine
    exception, not a poisoned float.

    Without numpy the kernel degrades to a per-row scalar walk
    (:attr:`~repro.cost.vectorized.ArrayContext.vectorized` is False) —
    same results, no speedup.
    """

    supports_batch = True

    #: Model eligibility test, mirroring ``DeltaEvaluator.supports``.
    supports = staticmethod(supports_incremental)

    def __init__(
        self,
        graph: JoinGraph,
        model: CostModel,
        budget: Budget,
        target_cost: float | None = None,
        record_floor: float | None = None,
    ) -> None:
        super().__init__(
            graph, model, budget, target_cost=target_cost,
            record_floor=record_floor,
        )
        self.context = ArrayContext(graph, model)
        #: Kernel sweeps performed.
        self.n_batches = 0
        #: Rows the kernel flagged as saturated (scalar overflow).
        self.n_saturated = 0
        #: Consumed rows discarded by the bound emulation.
        self.n_pruned = 0

    def price_batch(
        self, orders: Sequence[Sequence[int]]
    ) -> tuple[list[float], list[bool]]:
        """Price a batch of candidate orders in one kernel sweep.

        Pricing is free and side-effect-free: nothing is charged, recorded,
        or raised here.  Each returned ``(cost, saturated)`` row must be
        fed back through :meth:`consume` (in candidate order) to take
        effect; rows abandoned after a mid-batch stop are simply dropped,
        exactly as the scalar path never evaluates them.
        """
        costs, saturated = self.context.batch_costs(orders, validate=False)
        cost_list = [float(cost) for cost in costs]
        flag_list = [bool(flag) for flag in saturated]
        # detlint: ignore[PURE001] -- telemetry counter; outputs unaffected
        self.n_batches += 1
        n_saturated = sum(flag_list)
        self.n_saturated += n_saturated
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.inc("batch_kernel_invocations")
            metrics.observe("batch_size", float(len(cost_list)))
            if n_saturated:
                metrics.inc("batch_saturated_rows", float(n_saturated))
        return cost_list, flag_list

    def consume(
        self,
        order: JoinOrder,
        cost: float,
        saturated: bool,
        upper_bound: float | None = None,
    ) -> float | None:
        """Adopt one priced row with the scalar evaluator's bookkeeping.

        Charges ``n_joins`` up front (per-plan accounting), then either
        re-raises the scalar :class:`CostOverflowError` for a saturated
        row, prunes against ``upper_bound`` (``None`` return, not
        recorded — the bound emulation matches ``DeltaEvaluator``), or
        records the cost and checks the early-stopping target.
        """
        self.budget.charge(float(self.graph.n_joins))
        if saturated:
            # The kernel clamped this row; the scalar walk raises the
            # genuine exception (and is the oracle if it disagrees).
            cost = self.model.plan_cost(order, self.graph)
        self.n_evaluations += 1
        bound = self._safe_bound(upper_bound)
        pruned = bound is not None and cost > bound
        if pruned:
            self.n_pruned += 1
        else:
            self._record(order, cost)
        if self.tracer.enabled:
            self._trace_consume(pruned)
        self._check_target()
        return None if pruned else cost

    def evaluate_candidate(
        self,
        order: JoinOrder,
        upper_bound: float | None = None,
        first_changed: int | None = None,
    ) -> float | None:
        """Scalar fallback for loops that price candidates one at a time.

        Identical bookkeeping to :meth:`consume`, priced by a scalar walk
        — used by strategies (heuristics, WALK) that never batch.
        ``first_changed`` is advisory and ignored: there is no prefix
        cache here.
        """
        self.budget.charge(float(self.graph.n_joins))
        cost = self.model.plan_cost(order, self.graph)
        self.n_evaluations += 1
        bound = self._safe_bound(upper_bound)
        pruned = bound is not None and cost > bound
        if pruned:
            self.n_pruned += 1
        else:
            self._record(order, cost)
        if self.tracer.enabled:
            self._trace_consume(pruned)
        self._check_target()
        return None if pruned else cost

    def _trace_consume(self, pruned: bool) -> None:
        """Cold path: metric updates for one adopted row."""
        metrics = self.tracer.metrics
        metrics.inc("evaluations")
        metrics.inc("joins_walked", float(self.graph.n_joins))
        metrics.inc("joins_charged", float(self.graph.n_joins))
        if pruned:
            metrics.inc("pruned")
