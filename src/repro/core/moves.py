"""The move set over valid join orders (from the paper's [SG88]).

A *move* perturbs one join order into an adjacent one.  Following SG88's
swap-based move set (restated by its successors, e.g. Ioannidis & Kang),
two move kinds are mixed:

* **swap** — exchange the relations at two random positions;
* **insert** — remove the relation at one position and reinsert it at
  another (a cyclic shift of the span between them).

Both kinds together make the whole valid space reachable.  A proposed
neighbor that would introduce a cross product is rejected and the draw is
retried; after ``max_tries`` failures the move generator gives up and
raises :class:`NoValidMove` (which only happens on degenerate graphs whose
valid space is a single order).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.catalog.join_graph import JoinGraph
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order
from repro.utils.validation import check_probability


class NoValidMove(Exception):
    """No valid neighbor could be generated within the retry limit."""


class MoveSet:
    """Random valid-neighbor generation over join orders.

    ``swap_probability`` selects between the two move kinds (the default
    mixes them evenly); the remainder of the probability mass goes to
    insert moves.
    """

    def __init__(self, swap_probability: float = 0.5, max_tries: int = 64) -> None:
        self.swap_probability = check_probability(
            "swap_probability", swap_probability
        )
        if max_tries < 1:
            raise ValueError(f"max_tries must be >= 1, got {max_tries}")
        self.max_tries = max_tries

    def propose(self, order: JoinOrder, rng: random.Random) -> JoinOrder:
        """One random perturbation, not yet validity-checked."""
        n = len(order)
        if n < 2:
            raise NoValidMove("orders of length < 2 have no neighbors")
        if rng.random() < self.swap_probability:
            i, j = rng.sample(range(n), 2)
            return order.swap(i, j)
        source = rng.randrange(n)
        target = rng.randrange(n - 1)
        if target >= source:
            target += 1
        return order.insert(source, target)

    def random_neighbor(
        self, order: JoinOrder, graph: JoinGraph, rng: random.Random
    ) -> JoinOrder:
        """A random *valid* neighbor of ``order``.

        Retries invalid proposals up to ``max_tries`` times.
        """
        for _ in range(self.max_tries):
            candidate = self.propose(order, rng)
            if candidate != order and is_valid_order(candidate, graph):
                return candidate
        raise NoValidMove(
            f"no valid neighbor found in {self.max_tries} tries"
        )

    def neighbors(self, order: JoinOrder, graph: JoinGraph) -> Iterator[JoinOrder]:
        """Every distinct valid neighbor (exhaustive — tests only)."""
        n = len(order)
        seen: set[JoinOrder] = set()
        for i in range(n):
            for j in range(i + 1, n):
                candidate = order.swap(i, j)
                if candidate not in seen and is_valid_order(candidate, graph):
                    seen.add(candidate)
                    yield candidate
        for source in range(n):
            for target in range(n):
                if source == target:
                    continue
                candidate = order.insert(source, target)
                if (
                    candidate != order
                    and candidate not in seen
                    and is_valid_order(candidate, graph)
                ):
                    seen.add(candidate)
                    yield candidate
