"""The move set over valid join orders (from the paper's [SG88]).

A *move* perturbs one join order into an adjacent one.  Following SG88's
swap-based move set (restated by its successors, e.g. Ioannidis & Kang),
two move kinds are mixed:

* **swap** — exchange the relations at two random positions;
* **insert** — remove the relation at one position and reinsert it at
  another (a cyclic shift of the span between them).

Both kinds together make the whole valid space reachable.  A proposed
neighbor that would introduce a cross product is rejected and the draw is
retried; after ``max_tries`` failures the move generator gives up and
raises :class:`NoValidMove` (which only happens on degenerate graphs whose
valid space is a single order).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.catalog.join_graph import JoinGraph
from repro.plans.join_order import JoinOrder
from repro.plans.validity import is_valid_order
from repro.utils.validation import check_probability


class NoValidMove(Exception):
    """No valid neighbor could be generated within the retry limit."""


@dataclass(frozen=True)
class Move:
    """One structured perturbation: ``kind`` is ``"swap"`` or ``"insert"``.

    For swaps, ``i`` and ``j`` are the exchanged positions; for inserts,
    ``i`` is the source position and ``j`` the target.  Keeping the move
    structured (rather than only its resulting order) lets the search
    loops tell the delta evaluator where the order first changed, so only
    the suffix from that position is re-costed.
    """

    kind: str
    i: int
    j: int

    @property
    def first_changed(self) -> int:
        """First order position the move changes (prefix before it is intact)."""
        return self.i if self.i < self.j else self.j

    def apply(self, order: JoinOrder) -> JoinOrder:
        """The neighbor this move produces from ``order``."""
        if self.kind == "swap":
            return order.swap(self.i, self.j)
        return order.insert(self.i, self.j)

    def __str__(self) -> str:
        return f"{self.kind}({self.i},{self.j})"


def _format_moves(moves: list[Move], limit: int = 16) -> str:
    """Compact listing of rejected moves for :class:`NoValidMove` messages."""
    shown = ", ".join(str(move) for move in moves[:limit])
    if len(moves) > limit:
        shown += f", ... ({len(moves) - limit} more)"
    return shown


class MoveSet:
    """Random valid-neighbor generation over join orders.

    ``swap_probability`` selects between the two move kinds (the default
    mixes them evenly); the remainder of the probability mass goes to
    insert moves.
    """

    def __init__(self, swap_probability: float = 0.5, max_tries: int = 64) -> None:
        self.swap_probability = check_probability(
            "swap_probability", swap_probability
        )
        if max_tries < 1:
            raise ValueError(f"max_tries must be >= 1, got {max_tries}")
        self.max_tries = max_tries

    def propose_move(self, order: JoinOrder, rng: random.Random) -> Move:
        """One random perturbation as a structured :class:`Move`.

        Draws from ``rng`` in exactly the sequence the original
        order-returning :meth:`propose` used, so historical seeds keep
        producing the same walks.
        """
        n = len(order)
        if n < 2:
            raise NoValidMove("orders of length < 2 have no neighbors")
        if rng.random() < self.swap_probability:
            i, j = rng.sample(range(n), 2)
            return Move("swap", i, j)
        source = rng.randrange(n)
        target = rng.randrange(n - 1)
        if target >= source:
            target += 1
        return Move("insert", source, target)

    def propose(self, order: JoinOrder, rng: random.Random) -> JoinOrder:
        """One random perturbation, not yet validity-checked."""
        return self.propose_move(order, rng).apply(order)

    def random_valid_move(
        self, order: JoinOrder, graph: JoinGraph, rng: random.Random
    ) -> tuple[Move, JoinOrder]:
        """A random move whose result is a *valid* neighbor of ``order``.

        Returns the move together with the neighbor it produces.  Invalid
        proposals are retried up to ``max_tries`` times; after a first
        burst of failures a deterministic ``has_any_valid_neighbor`` scan
        decides whether retrying can succeed at all, so degenerate graphs
        whose valid space is a single order fail fast instead of burning
        the full retry allowance.  The :class:`NoValidMove` message lists
        the rejected moves, making the degenerate neighborhood diagnosable.
        """
        rejected: list[Move] = []
        fail_fast_after = min(8, self.max_tries)
        for attempt in range(1, self.max_tries + 1):
            move = self.propose_move(order, rng)
            candidate = move.apply(order)
            if candidate != order and is_valid_order(candidate, graph):
                return move, candidate
            rejected.append(move)
            if attempt == fail_fast_after and not self.has_any_valid_neighbor(
                order, graph
            ):
                raise NoValidMove(
                    f"order {order} has no valid neighbor (confirmed by "
                    f"exhaustive scan after {attempt} failed draws; "
                    f"rejected: {_format_moves(rejected)})"
                )
        raise NoValidMove(
            f"no valid neighbor found in {self.max_tries} tries; "
            f"rejected: {_format_moves(rejected)}"
        )

    def random_neighbor(
        self, order: JoinOrder, graph: JoinGraph, rng: random.Random
    ) -> JoinOrder:
        """A random *valid* neighbor of ``order``.

        Retries invalid proposals up to ``max_tries`` times.
        """
        _, candidate = self.random_valid_move(order, graph, rng)
        return candidate

    def has_any_valid_neighbor(self, order: JoinOrder, graph: JoinGraph) -> bool:
        """Whether any valid neighbor exists (deterministic, no rng draws).

        Stops at the first valid neighbor found, so on healthy graphs this
        is one or two validity checks; only truly degenerate orders pay
        for a full scan.
        """
        return next(self.neighbors(order, graph), None) is not None

    def neighbors(self, order: JoinOrder, graph: JoinGraph) -> Iterator[JoinOrder]:
        """Every distinct valid neighbor (exhaustive — tests only)."""
        n = len(order)
        seen: set[JoinOrder] = set()
        for i in range(n):
            for j in range(i + 1, n):
                candidate = order.swap(i, j)
                if candidate not in seen and is_valid_order(candidate, graph):
                    seen.add(candidate)
                    yield candidate
        for source in range(n):
            for target in range(n):
                if source == target:
                    continue
                candidate = order.insert(source, target)
                if (
                    candidate != order
                    and candidate not in seen
                    and is_valid_order(candidate, graph)
                ):
                    seen.add(candidate)
                    yield candidate
