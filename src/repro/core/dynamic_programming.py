"""Exact left-deep dynamic programming (the System R baseline).

The paper motivates the whole line of work by the infeasibility of
System R-style dynamic programming beyond ~10 joins: the classic
algorithm enumerates all subsets of relations (``O(2^N)`` space) and, for
each, the best relation to join last.  This module implements exactly
that algorithm over the library's outer-linear plan space, for three
purposes:

* an **exact optimum** for small queries, against which the heuristics
  and search methods can be scored absolutely (tests and examples);
* a demonstration of the blow-up that motivates the paper (the search is
  budget-charged like every other method, so its cost is measurable in
  the same units);
* a correctness oracle: on tiny graphs its result must equal exhaustive
  enumeration's.

Cross products are avoided exactly as in the rest of the library: a
relation may only extend a subset it joins with (per connected
component; disconnected graphs are handled by the top-level
``optimize``-style component split in :func:`dp_optimal_order`).

The DP prices plans under the **classic static estimator**
(:class:`~repro.cost.static.StaticCostModel` wrapping the given model):
with distinct-value propagation, suffix costs depend on the prefix
*order*, which breaks the Bellman principle the DP relies on; under the
static estimator intermediate sizes are subset-determined and the DP is
provably exact (tests verify it against full enumeration).
``DPResult.cost`` is the static-world optimum; ``DPResult.recost``
re-prices the chosen order under the original (propagating) model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.catalog.join_graph import JoinGraph
from repro.core.budget import Budget, BudgetExhausted
from repro.cost.base import CostModel
from repro.cost.static import StaticCostModel
from repro.plans.join_order import JoinOrder

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.robustness.resilience import FailureLog


@dataclass(frozen=True)
class DPResult:
    """Outcome of the dynamic program.

    ``cost`` is exact under the static estimator; ``recost`` is the same
    order priced by the original model (propagation included).
    ``complete`` is False only for budget-truncated runs under
    ``allow_partial`` — the order is then a valid plan grown greedily
    from the deepest fully-priced DP prefix, explicitly *not* an
    optimum.
    """

    order: JoinOrder
    cost: float
    recost: float
    n_subsets: int
    n_cost_evaluations: int
    complete: bool = True


def _neighbor_masks(graph: JoinGraph) -> list[int]:
    """Per relation, the bitmask of its join-graph neighbors."""
    neighbor_masks = []
    for vertex in range(graph.n_relations):
        mask = 0
        for neighbor in graph.neighbors(vertex):
            mask |= 1 << neighbor
        neighbor_masks.append(mask)
    return neighbor_masks


def _deepest_entry(
    best: dict[int, tuple[float, tuple[int, ...]]],
) -> tuple[int, float, tuple[int, ...]]:
    """The most-extended priced prefix, with deterministic tie-breaks.

    Largest subset first (it embodies the most paid-for work), then
    cheapest cost, then smallest mask — a pure function of the table's
    contents, so truncated runs are reproducible.
    """
    chosen_key: tuple[int, float, int] | None = None
    chosen: tuple[int, float, tuple[int, ...]] | None = None
    for mask, (cost, order) in best.items():
        key = (-bin(mask).count("1"), cost, mask)
        if chosen_key is None or key < chosen_key:
            chosen_key = key
            chosen = (mask, cost, order)
    assert chosen is not None  # singletons are always present
    return chosen


def _greedy_completion(
    graph: JoinGraph,
    neighbor_masks: list[int],
    order: tuple[int, ...],
) -> tuple[int, ...]:
    """Extend a valid prefix to a full valid order, smallest index first."""
    n = graph.n_relations
    full = (1 << n) - 1
    mask = 0
    adjacent = 0
    for vertex in order:
        mask |= 1 << vertex
        adjacent |= neighbor_masks[vertex]
    result = list(order)
    while mask != full:
        candidates = adjacent & ~mask
        if not candidates:
            candidates = ~mask & full
        low_bit = candidates & -candidates
        vertex = low_bit.bit_length() - 1
        result.append(vertex)
        mask |= low_bit
        adjacent |= neighbor_masks[vertex]
    return tuple(result)


def dp_optimal_order(
    graph: JoinGraph,
    model: CostModel,
    budget: Budget | None = None,
    max_relations: int = 20,
    *,
    allow_partial: bool = False,
    failure_log: "FailureLog | None" = None,
) -> DPResult:
    """The cheapest valid outer-linear order, by subset DP.

    ``max_relations`` guards against accidentally launching a ``2^N``
    computation on a large query (the paper's point); raise it explicitly
    to push further.  The budget, when given, is charged one unit per
    join-cost evaluation, i.e. ``len(subset)`` units per plan prefix
    evaluation, comparable with the other methods' accounting.

    A budget that dies mid-layer raises :class:`BudgetExhausted` by
    default — a truncated table's ``best[full]`` entry would be a wrong
    "optimum" and must never be presented as one.  With
    ``allow_partial=True`` the deepest fully-priced prefix is instead
    completed greedily into a valid order and returned with
    ``complete=False`` (and a record in ``failure_log`` when given).
    """
    n = graph.n_relations
    if n > max_relations:
        raise ValueError(
            f"dynamic programming over {n} relations needs 2^{n} subsets; "
            f"raise max_relations above {max_relations} to force it"
        )
    if not graph.is_connected:
        raise ValueError("dp_optimal_order requires a connected graph")
    if n == 1:
        return DPResult(JoinOrder([0]), 0.0, 0.0, 1, 0)

    static = model if isinstance(model, StaticCostModel) else StaticCostModel(model)
    neighbor_masks = _neighbor_masks(graph)
    # best[subset_mask] = (cost, order_tuple); grown breadth-first by
    # subset size so every predecessor exists when needed.
    best: dict[int, tuple[float, tuple[int, ...]]] = {}
    for vertex in range(n):
        best[1 << vertex] = (0.0, (vertex,))

    n_cost_evaluations = 0
    current_layer = list(best)
    try:
        for _size in range(2, n + 1):
            next_layer: list[int] = []
            for subset in current_layer:
                cost_so_far, order_so_far = best[subset]
                # Extend with every relation adjacent to the subset.
                candidates = 0
                for vertex_index, vertex_mask in enumerate(neighbor_masks):
                    if subset & (1 << vertex_index):
                        candidates |= vertex_mask
                candidates &= ~subset
                while candidates:
                    low_bit = candidates & -candidates
                    candidates ^= low_bit
                    vertex = low_bit.bit_length() - 1
                    new_subset = subset | low_bit
                    new_order = order_so_far + (vertex,)
                    # Evaluate the prefix cost exactly (propagation included).
                    if budget is not None:
                        budget.charge(float(len(new_order) - 1))
                    prefix_cost = static.plan_cost(JoinOrder(new_order), graph)
                    n_cost_evaluations += len(new_order) - 1
                    known = best.get(new_subset)
                    if known is None or prefix_cost < known[0]:
                        if known is None:
                            next_layer.append(new_subset)
                        best[new_subset] = (prefix_cost, new_order)
            current_layer = next_layer
    except BudgetExhausted:
        if not allow_partial:
            raise
        # The table is truncated: best[full], if present at all, may not
        # be optimal.  Return the deepest fully-priced prefix, completed
        # greedily (uncharged), and say so loudly.
        mask, _, order = _deepest_entry(best)
        full_order = _greedy_completion(graph, neighbor_masks, order)
        join_order = JoinOrder(full_order)
        if failure_log is not None:
            failure_log.add(
                stage="dp",
                method="DP",
                seed=None,
                kind="budget-exhausted",
                detail=(
                    f"budget died after {n_cost_evaluations} cost "
                    f"evaluations with {bin(mask).count('1')}/{n} "
                    "relations priced"
                ),
                action="greedy completion of deepest priced prefix",
            )
        return DPResult(
            order=join_order,
            cost=static.plan_cost(join_order, graph),
            recost=model.plan_cost(join_order, graph),
            n_subsets=len(best),
            n_cost_evaluations=n_cost_evaluations,
            complete=False,
        )

    full = (1 << n) - 1
    cost, order = best[full]
    join_order = JoinOrder(order)
    return DPResult(
        order=join_order,
        cost=cost,
        recost=model.plan_cost(join_order, graph),
        n_subsets=len(best),
        n_cost_evaluations=n_cost_evaluations,
    )
