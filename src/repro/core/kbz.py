"""The KBZ heuristic (the paper's §4.2; Krishnamurthy, Boral & Zaniolo).

A three-level hierarchy:

* **Algorithm R** — given a join graph that is a *rooted tree*, produce the
  optimal join order consistent with the tree's precedence constraints, by
  ordering relations by increasing *rank* and normalizing rank-order
  violations between a parent and the head of its subtree chain into
  compound modules (the classic IK/KBZ sequencing for ASI cost functions).
* **Algorithm T** — given a join graph that is a tree, run R for every
  choice of root and keep the cheapest order.  (The paper notes an
  ``O(N^2)`` incremental variant; we recompute per root — same output —
  and charge the budget for the actual work, preserving the paper's
  observation that KBZ pays a lot per generated state.)
* **Algorithm G** — given a general (possibly cyclic) join graph, first
  choose a spanning tree, then apply T.  The spanning tree is grown by an
  augmentation-like process using one of the paper's criteria 3/4/5 as the
  edge weight; criterion 3 (join selectivity — the KBZ86 recommendation)
  wins the paper's Table 2 and is the default.

Rank uses the paper's criterion-5 form: for a relation ``v`` joined to its
parent through a predicate with selectivity ``J`` and distinct-value count
``D_v`` on ``v``'s side,

    T(v) = J * N_v              (growth factor)
    C(v) = 0.5 * N_v / D_v      (differential cost of performing the join)
    rank(v) = (T(v) - 1) / C(v)

and compound modules combine by the ASI rule ``T = T_a T_b``,
``C = C_a + T_a C_b``.  The final order is costed with the *full* cost
model over the *full* join graph (non-tree predicates included), as KBZ
prescribe.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator

from repro.catalog.join_graph import JoinGraph
from repro.catalog.predicates import JoinPredicate
from repro.core.augmentation import AugmentationCriterion
from repro.core.budget import RANK_OP_CHARGE, Budget
from repro.plans.join_order import JoinOrder

#: Spanning-tree weight criteria admitted by §4.2 (the last three of §4.1).
SPANNING_TREE_CRITERIA = (
    AugmentationCriterion.MIN_SELECTIVITY,
    AugmentationCriterion.MIN_RESULT_SIZE,
    AugmentationCriterion.MIN_RANK,
)

#: The Table 2 winner and KBZ86's own recommendation.
DEFAULT_WEIGHT = AugmentationCriterion.MIN_SELECTIVITY


@dataclass(frozen=True)
class _Module:
    """A (possibly compound) node of algorithm R's chains."""

    relations: tuple[int, ...]
    growth: float
    cost: float

    @property
    def rank(self) -> float:
        return (self.growth - 1.0) / max(self.cost, 1e-300)

    def combined_with(self, other: "_Module") -> "_Module":
        """ASI combination rule for the sequence ``self`` then ``other``."""
        return _Module(
            relations=self.relations + other.relations,
            growth=self.growth * other.growth,
            cost=self.cost + self.growth * other.cost,
        )


def _edge_weight(
    graph: JoinGraph,
    predicate: JoinPredicate,
    inside: int,
    outside: int,
    criterion: AugmentationCriterion,
) -> float:
    """Spanning-tree edge weight under one of criteria 3/4/5."""
    selectivity = predicate.selectivity
    if criterion is AugmentationCriterion.MIN_SELECTIVITY:
        return selectivity
    n_inside = graph.cardinality(inside)
    n_outside = graph.cardinality(outside)
    result = n_inside * n_outside * selectivity
    if criterion is AugmentationCriterion.MIN_RESULT_SIZE:
        return result
    if criterion is AugmentationCriterion.MIN_RANK:
        distinct = predicate.distinct_values(outside)
        cost_proxy = 0.5 * n_inside * (n_outside / distinct)
        return (result - 1.0) / max(cost_proxy, 1e-30)
    raise ValueError(
        f"criterion {criterion!r} is not a spanning-tree weight "
        f"(use one of {SPANNING_TREE_CRITERIA})"
    )


def kbz_spanning_tree(
    graph: JoinGraph,
    criterion: AugmentationCriterion = DEFAULT_WEIGHT,
    budget: Budget | None = None,
) -> dict[int, list[int]]:
    """Algorithm G's spanning-tree choice; returns a tree adjacency map.

    Grows the tree from the smallest relation, at each step taking the
    frontier edge with the smallest criterion weight (an augmentation-like
    Prim's algorithm; for criterion 3 this is exactly a minimum spanning
    tree under join-selectivity weights).
    """
    if not graph.is_connected:
        raise ValueError("KBZ requires a connected join graph; split components first")
    if criterion not in SPANNING_TREE_CRITERIA:
        raise ValueError(f"{criterion!r} is not a valid spanning-tree criterion")
    start = min(range(graph.n_relations), key=lambda i: (graph.cardinality(i), i))
    in_tree = {start}
    adjacency: dict[int, list[int]] = {i: [] for i in range(graph.n_relations)}
    while len(in_tree) < graph.n_relations:
        best_key: tuple[float, int, int] | None = None
        best_edge: tuple[int, int] | None = None
        scored = 0
        for inside in in_tree:
            for outside in graph.neighbors(inside):
                if outside in in_tree:
                    continue
                predicate = graph.edge(inside, outside)
                weight = _edge_weight(graph, predicate, inside, outside, criterion)
                scored += 1
                key = (weight, inside, outside)
                if best_key is None or key < best_key:
                    best_key, best_edge = key, (inside, outside)
        if budget is not None and scored:
            budget.charge(RANK_OP_CHARGE * scored)
        assert best_edge is not None  # connectivity guarantees an edge
        inside, outside = best_edge
        adjacency[inside].append(outside)
        adjacency[outside].append(inside)
        in_tree.add(outside)
    return adjacency


def _root_tree(
    tree: dict[int, list[int]], root: int
) -> tuple[dict[int, list[int]], dict[int, int]]:
    """Orient ``tree`` at ``root``; returns (children map, parent map)."""
    children: dict[int, list[int]] = {v: [] for v in tree}
    parent: dict[int, int] = {}
    stack = [root]
    visited = {root}
    while stack:
        vertex = stack.pop()
        for neighbor in tree[vertex]:
            if neighbor not in visited:
                visited.add(neighbor)
                parent[neighbor] = vertex
                children[vertex].append(neighbor)
                stack.append(neighbor)
    return children, parent


def _leaf_module(graph: JoinGraph, vertex: int, parent: int) -> _Module:
    """The rank module of ``vertex`` relative to its tree parent."""
    predicate = graph.edge(vertex, parent)
    cardinality = graph.cardinality(vertex)
    growth = predicate.selectivity * cardinality
    distinct = predicate.distinct_values(vertex)
    cost = 0.5 * cardinality / distinct
    return _Module((vertex,), growth, max(cost, 1e-30))


class _OpCounter:
    """Counts algorithm R's merge/normalize steps for budget charging."""

    def __init__(self) -> None:
        self.ops = 0

    def tick(self, n: int = 1) -> None:
        self.ops += n


def _merge_chains(chains: list[list[_Module]], counter: _OpCounter) -> list[_Module]:
    """k-way merge of rank-sorted chains (stable, deterministic)."""
    counter.tick(sum(len(chain) for chain in chains))
    return list(
        heapq.merge(*chains, key=lambda m: (m.rank, m.relations))
    )


def _normalize(chain: list[_Module], counter: _OpCounter) -> list[_Module]:
    """Fold rank-order violations into compound modules (stack pass)."""
    result: list[_Module] = []
    for module in chain:
        result.append(module)
        while len(result) >= 2 and result[-2].rank > result[-1].rank:
            second = result.pop()
            first = result.pop()
            result.append(first.combined_with(second))
            counter.tick()
    return result


def _subtree_chain(
    graph: JoinGraph,
    vertex: int,
    children: dict[int, list[int]],
    parent: dict[int, int],
    counter: _OpCounter,
) -> list[_Module]:
    """Algorithm R on the subtree rooted at ``vertex`` (non-root vertex)."""
    child_chains = [
        _subtree_chain(graph, child, children, parent, counter)
        for child in children[vertex]
    ]
    merged = _merge_chains(child_chains, counter) if child_chains else []
    chain = [_leaf_module(graph, vertex, parent[vertex])] + merged
    return _normalize(chain, counter)


def kbz_order_for_root(
    graph: JoinGraph,
    tree: dict[int, list[int]],
    root: int,
    budget: Budget | None = None,
) -> JoinOrder:
    """Algorithm R: the rank-optimal order for ``tree`` rooted at ``root``."""
    children, parent = _root_tree(tree, root)
    counter = _OpCounter()
    chains = [
        _subtree_chain(graph, child, children, parent, counter)
        for child in children[root]
    ]
    merged = _merge_chains(chains, counter) if chains else []
    if budget is not None and counter.ops:
        budget.charge(RANK_OP_CHARGE * counter.ops)
    positions = [root]
    for module in merged:
        positions.extend(module.relations)
    return JoinOrder(positions)


def kbz_root_sequence(graph: JoinGraph) -> list[int]:
    """Root choices for algorithm T, in increasing-size order."""
    return sorted(range(graph.n_relations), key=lambda i: (graph.cardinality(i), i))


def kbz_orders(
    graph: JoinGraph,
    criterion: AugmentationCriterion = DEFAULT_WEIGHT,
    budget: Budget | None = None,
) -> Iterator[JoinOrder]:
    """Algorithms G + T as a lazy stream of per-root orders.

    Builds the spanning tree once (charged), then yields algorithm R's
    order for each root.  The cheapest of these — judged by the caller's
    cost model over the full join graph — is KBZ's answer; the stream form
    lets the IKI/KBI combinations consume the states one at a time.
    """
    tree = kbz_spanning_tree(graph, criterion, budget)
    for root in kbz_root_sequence(graph):
        yield kbz_order_for_root(graph, tree, root, budget)
