"""Core optimization algorithms: the paper's contribution.

* :mod:`repro.core.budget` — the deterministic optimization clock.
* :mod:`repro.core.moves` — the SG88 move set over valid join orders.
* :mod:`repro.core.iterative` — iterative improvement (Figure 1).
* :mod:`repro.core.annealing` — simulated annealing (Figure 2).
* :mod:`repro.core.augmentation` — the augmentation heuristic (§4.1).
* :mod:`repro.core.kbz` — the KBZ heuristic: algorithms R, T, G (§4.2).
* :mod:`repro.core.local_improvement` — cluster-wise improvement (§4.3).
* :mod:`repro.core.combinations` — II, SA, SAA, SAK, IAI, IKI, IAL, AGI,
  KBI (§4.4) and the pure-heuristic methods used by Tables 1 and 2.
* :mod:`repro.core.optimizer` — the public ``optimize()`` entry point.
"""

from repro.core.budget import Budget, BudgetExhausted, WallClockBudget
from repro.core.moves import Move, MoveSet, NoValidMove
from repro.core.state import (
    BatchEvaluator,
    DeltaEvaluator,
    Evaluation,
    Evaluator,
    PER_JOIN,
    PER_PLAN,
    TargetReached,
)
from repro.core.augmentation import AugmentationCriterion
from repro.core.dynamic_programming import DPResult, dp_optimal_order
from repro.core.bushy_search import bushy_iterative_improvement
from repro.core.optimizer import OptimizationResult, available_methods, optimize

__all__ = [
    "Budget",
    "BudgetExhausted",
    "WallClockBudget",
    "TargetReached",
    "Move",
    "MoveSet",
    "NoValidMove",
    "Evaluation",
    "Evaluator",
    "DeltaEvaluator",
    "BatchEvaluator",
    "PER_PLAN",
    "PER_JOIN",
    "AugmentationCriterion",
    "DPResult",
    "dp_optimal_order",
    "bushy_iterative_improvement",
    "OptimizationResult",
    "available_methods",
    "optimize",
]
