"""The public entry point: ``optimize(query, method=...)``.

Handles the pre-search heuristics the paper applies before the
combinatorial search proper:

* selections/projections are already folded into the catalog statistics
  (``Relation.cardinality`` is the post-selection ``N_k``);
* cross products are postponed: a disconnected join graph is split into
  components, each optimized separately with a budget share proportional
  to its ``N^2``, and the component orders are concatenated smallest
  estimated result first.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.catalog.join_graph import JoinGraph, Query
from repro.core.budget import Budget, BudgetExhausted, DEFAULT_UNITS_PER_N2
from repro.core.combinations import (
    MethodParams,
    Strategy,
    available_method_names,
    make_strategy,
)
from repro.core.state import (
    BatchEvaluator,
    DeltaEvaluator,
    Evaluator,
    PER_JOIN,
    PER_PLAN,
    TargetReached,
)
from repro.cost.base import CostModel
from repro.cost.bounds import lower_bound
from repro.cost.cardinality import prefix_cardinalities
from repro.cost.memory import MainMemoryCostModel
from repro.obs import events as obs_events
from repro.obs.tracer import Tracer, as_tracer
from repro.obs.writer import write_trace
from repro.plans.join_order import JoinOrder
from repro.plans.join_tree import JoinTree, build_join_tree
from repro.utils.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.obs.provenance import PlanProvenance


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one optimizer invocation.

    ``degraded`` is True when the resilient fallback chain had to recover
    from at least one failure to produce this result; ``failures`` holds
    the corresponding :class:`~repro.robustness.resilience.FailureRecord`
    entries, in the order they occurred (empty for clean runs).

    ``provenance`` is the incumbent lineage reconstructed from the trace
    (:mod:`repro.obs.provenance`) when tracing was on, else ``None``.
    It is excluded from equality/hash so a traced result still compares
    equal to its untraced twin — the differential determinism suite
    relies on tracing never changing the result.
    """

    method: str
    graph: JoinGraph
    order: JoinOrder
    cost: float
    units_spent: float
    n_evaluations: int
    trajectory: tuple[tuple[float, float], ...]
    degraded: bool = False
    failures: tuple = ()
    provenance: "PlanProvenance | None" = field(
        default=None, compare=False, repr=False
    )

    def best_cost_within(self, units: float) -> float | None:
        """Best cost known once ``units`` had been spent (trajectory read)."""
        best = None
        for spent, cost in self.trajectory:
            if spent > units:
                break
            best = cost
        return best

    def join_tree(self) -> JoinTree:
        """The outer-linear join tree of the chosen order."""
        return build_join_tree(self.order, self.graph)


def available_methods() -> list[str]:
    """Method names accepted by :func:`optimize`."""
    return available_method_names()


def _method_label(method: str | Strategy) -> str:
    """The method name reported on results (``"IAI"``, ``"SAJ"``, ...)."""
    return method.name if isinstance(method, Strategy) else method.upper()


def _optimize_connected(
    graph: JoinGraph,
    method: str | Strategy,
    model: CostModel,
    budget: Budget,
    seed: int,
    params: MethodParams,
    target_cost: float | None = None,
    incremental: bool = True,
    batch_costing: bool = False,
    budget_accounting: str = PER_PLAN,
    record_floor: float | None = None,
    tracer: Tracer | None = None,
) -> Evaluator:
    """Run one strategy on a connected graph; returns its evaluator."""
    strategy = make_strategy(method)
    # The RNG stream is keyed on the method *string* exactly as passed, so
    # historical seeds stay bit-for-bit reproducible; Strategy instances
    # key on their registered name.
    rng_key = method if isinstance(method, str) else strategy.name
    rng = derive_rng(seed, "optimize", rng_key, graph.n_relations)
    if batch_costing and BatchEvaluator.supports(model):
        evaluator: Evaluator = BatchEvaluator(
            graph,
            model,
            budget,
            target_cost=target_cost,
            record_floor=record_floor,
        )
    elif incremental and DeltaEvaluator.supports(model):
        evaluator = DeltaEvaluator(
            graph,
            model,
            budget,
            target_cost=target_cost,
            charge_mode=budget_accounting,
            record_floor=record_floor,
        )
    else:
        # Models that override plan_cost (static heuristics, fault
        # injectors) define their own plan semantics; they keep the full
        # reference evaluator.
        evaluator = Evaluator(
            graph, model, budget, target_cost=target_cost,
            record_floor=record_floor,
        )
    if tracer is not None:
        evaluator.tracer = tracer
    if graph.n_relations == 1:
        evaluator.best = None
        return evaluator
    try:
        strategy.run(evaluator, rng, params)
    except (BudgetExhausted, TargetReached):
        pass
    return evaluator


def optimize(
    query: Query | JoinGraph,
    method: str | Strategy = "IAI",
    model: CostModel | None = None,
    time_factor: float = 9.0,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    seed: int = 0,
    budget: Budget | None = None,
    params: MethodParams | None = None,
    stop_at_bound: bool = False,
    bound_tolerance: float = 1.05,
    resilient: bool = False,
    max_retries: int = 2,
    incremental: bool = True,
    batch_costing: bool = False,
    budget_accounting: str = PER_PLAN,
    workers: int | None = None,
    restarts: int | None = None,
    record_floor: float | None = None,
    trace: Tracer | str | None = None,
) -> OptimizationResult:
    """Optimize a join query with one of the paper's methods.

    Parameters
    ----------
    query:
        A :class:`~repro.catalog.join_graph.Query` or a bare join graph.
    method:
        One of :func:`available_methods` (``"IAI"`` is the paper's overall
        winner and the default).
    model:
        Cost model; defaults to the main-memory model.
    time_factor / units_per_n2:
        The paper's time limit ``time_factor * N^2``, converted to work
        units (see :mod:`repro.core.budget`).  Ignored when an explicit
        ``budget`` is given.
    seed:
        Seed for the method's random choices (start states, moves).
    stop_at_bound / bound_tolerance:
        Enable the paper's early-stopping rule: stop as soon as a plan
        costs at most ``bound_tolerance`` times the lower bound on the
        optimum (see :func:`repro.cost.bounds.lower_bound`).
    resilient / max_retries:
        With ``resilient=True``, failures (cost-model exceptions, NaN/inf
        costs, corrupted statistics, exhausted budgets) are absorbed by a
        fallback chain — rotated-seed retries, method degradation, and a
        deterministic spanning order as a last resort — instead of
        propagating; see :mod:`repro.robustness.resilience`.  The result's
        ``degraded``/``failures`` fields record what happened.
        ``max_retries`` bounds the rotated-seed retries per stage.
    incremental:
        Route the search through the prefix-cached delta evaluator
        (:class:`~repro.core.state.DeltaEvaluator`) when the cost model is
        eligible — models that override ``plan_cost``, and the resilient
        path, always use the full reference evaluator.  ``False`` forces
        full re-costing everywhere (the reference oracle).
    batch_costing:
        Route the search through the vectorized batch evaluator
        (:class:`~repro.core.state.BatchEvaluator`) when the cost model
        is eligible: search loops speculate candidate batches and price
        them in single kernel sweeps (:mod:`repro.cost.vectorized`),
        with RNG draws and results bit-identical to the scalar path.
        Takes precedence over ``incremental``; ineligible models fall
        back exactly as ``incremental`` does, and without numpy the
        kernel degrades to scalar per-row costing (same results, no
        speedup).  Incompatible with per-join ``budget_accounting``
        (the kernel always walks every join) and ignored on the
        resilient path, which pins the reference evaluator.
    budget_accounting:
        ``"per-plan"`` (default) charges ``n_joins`` units per candidate
        exactly like the full evaluator — the compatibility mode that
        keeps published paper-reproduction budgets meaningful.
        ``"per-join"`` charges only the joins the delta evaluator actually
        walks, so prefix reuse and bound pruning buy more candidates per
        budget.  Ignored when the full evaluator is in effect.
    workers / restarts:
        Setting either routes the call through the multi-start
        orchestrator (:func:`repro.parallel.multi_start_optimize`):
        ``restarts`` independent restarts (default
        :data:`~repro.parallel.orchestrator.DEFAULT_RESTARTS`), each on
        an equal budget share with a seed derived as
        ``derive_seed(seed, "worker", k)``, fanned across ``workers``
        processes and merged deterministically — the result is
        bit-identical for every worker count, crashes included.  Both
        ``None`` (the default) keeps the legacy single-trajectory path
        bit-unchanged.  Incompatible with ``resilient=True`` (the
        orchestrator has its own crash recovery).
    record_floor:
        A trusted upper bound on the cost that still matters: start
        states pricier than the floor are skipped.  Set by the
        orchestrator to its pre-pass floor; rarely useful directly.
    trace:
        Observability sink (see :mod:`repro.obs`).  ``None`` (default)
        keeps the no-op backend — the run pays one attribute check per
        hook.  A :class:`~repro.obs.tracer.Tracer` records events and
        metrics in memory; a string/path records and writes the trace as
        JSONL to that file when the run completes.  Tracing is
        determinism-safe: it never charges the budget, draws from an
        RNG, or alters control flow, so a traced run returns a
        bit-identical result to an untraced one.

    Every returned plan — resilient or not — passes the verification gate
    (:func:`repro.robustness.verify.verify_plan`): the order is a valid
    permutation, cross products appear only between components, and the
    cost is finite, non-negative, and agrees with recomputation.
    """
    graph = query.graph if isinstance(query, Query) else query
    if batch_costing and budget_accounting == PER_JOIN:
        raise ValueError(
            "batch_costing=True cannot be combined with per-join budget "
            "accounting: the batch kernel always walks every join, so "
            "per-join charges would just be per-plan charges in disguise"
        )
    if model is None:
        model = MainMemoryCostModel()
    if params is None:
        params = MethodParams()
    n_joins = max(1, graph.n_joins)
    if budget is None:
        budget = Budget.for_query(n_joins, time_factor, units_per_n2)
    target_cost = (
        bound_tolerance * lower_bound(graph, model) if stop_at_bound else None
    )
    tracer, trace_path = as_tracer(trace)
    if tracer.enabled:
        tracer.bind_clock(budget)
        tracer.emit(
            obs_events.RUN_START,
            method=_method_label(method),
            n_relations=graph.n_relations,
            seed=seed,
            budget=budget.limit,
        )
        tracer.metrics.gauge("budget_limit", budget.limit)
        if target_cost is not None:
            tracer.emit(obs_events.BOUND, kind="early_stop", value=target_cost)
            tracer.metrics.inc("bounds_published")

    if workers is not None or restarts is not None:
        if resilient:
            raise ValueError(
                "resilient=True cannot be combined with workers/restarts: "
                "the parallel orchestrator has its own crash recovery "
                "(crashed restarts are re-executed serially, never dropped)"
            )
        # Imported lazily: repro.parallel sits above core.
        from repro.parallel.orchestrator import multi_start_optimize

        result, _report = multi_start_optimize(
            graph,
            method=method,
            model=model,
            time_factor=time_factor,
            units_per_n2=units_per_n2,
            seed=seed,
            budget=budget,
            params=params,
            restarts=restarts,
            workers=workers,
            incremental=incremental,
            batch_costing=batch_costing,
            budget_accounting=budget_accounting,
            stop_at_bound=stop_at_bound,
            bound_tolerance=bound_tolerance,
            tracer=tracer,
        )
        return _finish_trace(result, tracer, trace_path, budget)

    if resilient:
        # Imported lazily: robustness is a layer above core and importing
        # it at module scope would be circular.
        from repro.robustness.resilience import resilient_optimize

        result = resilient_optimize(
            graph,
            method=method,
            model=model,
            budget=budget,
            seed=seed,
            params=params,
            target_cost=target_cost,
            max_retries=max_retries,
            tracer=tracer,
        )
        return _finish_trace(result, tracer, trace_path, budget)

    if graph.is_connected:
        evaluator = _optimize_connected(
            graph,
            method,
            model,
            budget,
            seed,
            params,
            target_cost,
            incremental=incremental,
            batch_costing=batch_costing,
            budget_accounting=budget_accounting,
            record_floor=record_floor,
            tracer=tracer,
        )
        if evaluator.best is None:
            raise BudgetExhausted(
                "budget expired before any plan could be evaluated"
            )
        result = OptimizationResult(
            method=_method_label(method),
            graph=graph,
            order=evaluator.best.order,
            cost=evaluator.best.cost,
            units_spent=budget.spent,
            n_evaluations=evaluator.n_evaluations,
            trajectory=tuple(evaluator.trajectory),
        )
    else:
        result = _optimize_disconnected(
            graph,
            method,
            model,
            budget,
            seed,
            params,
            incremental=incremental,
            batch_costing=batch_costing,
            budget_accounting=budget_accounting,
            tracer=tracer,
        )
    from repro.robustness.verify import verify_or_raise

    verify_or_raise(result.order, result.cost, graph, model)
    return _finish_trace(result, tracer, trace_path, budget)


def _finish_trace(
    result: OptimizationResult,
    tracer: Tracer,
    trace_path: str | None,
    budget: Budget,
) -> OptimizationResult:
    """Emit the run's closing event, attach provenance, flush the sink."""
    if tracer.enabled:
        tracer.bind_clock(budget)
        tracer.emit(
            obs_events.RUN_END,
            cost=result.cost,
            units=result.units_spent,
            evaluations=result.n_evaluations,
            degraded=result.degraded,
        )
        tracer.metrics.gauge("best_cost", result.cost)
        tracer.metrics.gauge("budget_spent", budget.spent)
        events = getattr(tracer, "events", None)
        if events is not None:
            # Reconstructed from the trace just closed — a pure fold
            # over the events, so the result object itself stays
            # byte-identical to an untraced run's (the field is
            # excluded from equality).
            from repro.obs.provenance import build_provenance

            result = replace(result, provenance=build_provenance(events))
        if trace_path is not None:
            write_trace(
                events if events is not None else [],
                trace_path,
                meta={"method": result.method, "n_relations": result.graph.n_relations},
            )
    return result


def _optimize_disconnected(
    graph: JoinGraph,
    method: str | Strategy,
    model: CostModel,
    budget: Budget,
    seed: int,
    params: MethodParams,
    incremental: bool = True,
    batch_costing: bool = False,
    budget_accounting: str = PER_PLAN,
    tracer: Tracer | None = None,
) -> OptimizationResult:
    """Postpone cross products: per-component search, then concatenation.

    Each component gets a budget share proportional to its ``N^2`` (with a
    floor so single-relation components cost nothing); component orders
    are concatenated in increasing order of estimated component result
    size, so the cross products at the end multiply small results first.
    The reported cost re-evaluates the full concatenated order on the full
    graph, pricing the cross products.
    """
    components = graph.components
    weights = [max(1, len(c) - 1) ** 2 for c in components]
    total_weight = sum(weights)
    pieces: list[tuple[float, list[int]]] = []
    n_evaluations = 0
    for component, weight in zip(components, weights):
        subgraph = graph.subgraph(component)
        if subgraph.n_relations == 1:
            pieces.append((subgraph.cardinality(0), list(component)))
            continue
        share = Budget(limit=max(1.0, budget.remaining * weight / total_weight))
        if tracer is not None and tracer.enabled:
            tracer.phase_start("component", relations=len(component))
        result = optimize(
            subgraph,
            method=method,
            model=model,
            seed=seed,
            budget=share,
            params=params,
            incremental=incremental,
            batch_costing=batch_costing,
            budget_accounting=budget_accounting,
            trace=tracer,
        )
        budget.spent = min(budget.limit, budget.spent + share.spent)
        if tracer is not None and tracer.enabled:
            # The nested run re-bound the clock to its share; restore it.
            tracer.bind_clock(budget)
            tracer.phase_end("component", relations=len(component))
        n_evaluations += result.n_evaluations
        local_order = [component[i] for i in result.order]
        sizes = prefix_cardinalities(result.order, subgraph)
        pieces.append((sizes[-1], local_order))
    pieces.sort(key=lambda piece: piece[0])
    positions: list[int] = []
    for _, piece in pieces:
        positions.extend(piece)
    order = JoinOrder(positions)
    cost = model.plan_cost(order, graph)
    return OptimizationResult(
        method=_method_label(method),
        graph=graph,
        order=order,
        cost=cost,
        units_spent=budget.spent,
        n_evaluations=n_evaluations,
        trajectory=((budget.spent, cost),),
    )
