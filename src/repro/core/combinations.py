"""The paper's nine methods (§4.4) plus the pure-heuristic methods.

Every method is a :class:`Strategy` with a uniform ``run`` interface; all
funnel their cost evaluations through one :class:`~repro.core.state.Evaluator`
so the budget, the best solution, and the improvement trajectory are
accounted identically across methods.  The strategies:

==== =====================================================================
II   iterative improvement from random starts, best local minimum wins
SA   simulated annealing from a random start (re-annealed while budget
     remains, since a frozen anneal cannot use leftover time)
SAA  SA started from one augmentation-heuristic state
SAK  SA started from the KBZ heuristic's state
IAI  II started from the augmentation states, then from random states
IKI  II started from the KBZ per-root states, then from random states
IAL  II from augmentation states, then local improvement on the best
     local minimum, then II from random states with any leftover budget
AGI  augmentation states evaluated directly, then II from random states
KBI  KBZ states evaluated directly, then II from random states
==== =====================================================================

The pure heuristics (``AUG1``–``AUG5``, ``KBZ3``–``KBZ5``) exist for the
paper's Tables 1 and 2: they generate their finite state set and stop —
they cannot exploit additional time, which is the paper's stated reason
for combining them with II/SA in the first place.

Two further baselines come from the companion [SG88] study (the general
combinatorial techniques paper this one extends): ``RANDOM`` (random
sampling of valid orders) and ``WALK`` (a perturbation walk accepting
every move) — the methods II and SA were originally shown to beat.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator

from repro.core.annealing import AnnealingSchedule, simulated_annealing
from repro.core.augmentation import (
    AugmentationCriterion,
    DEFAULT_CRITERION,
    augmentation_orders,
)
from repro.core.budget import BudgetExhausted, DEFAULT_UNITS_PER_N2
from repro.core.iterative import improvement_run, multi_start_improvement
from repro.core.kbz import DEFAULT_WEIGHT, kbz_orders
from repro.core.local_improvement import best_strategy_for_budget, local_improve
from repro.core.moves import MoveSet
from repro.core.state import Evaluation, Evaluator, PER_PLAN
from repro.obs import events as obs_events
from repro.plans.join_order import JoinOrder
from repro.plans.validity import random_valid_order


@dataclass(frozen=True)
class MethodParams:
    """Shared tunables threaded into every strategy.

    ``sa_bound_pruning`` enables simulated annealing's draw-first
    acceptance (see :func:`repro.core.annealing.simulated_annealing`),
    which lets the delta evaluator abandon candidates mid-costing at the
    price of a different rng stream than the classic formulation — off by
    default so seeded runs stay reproducible against historical results.
    """

    move_set: MoveSet = field(default_factory=MoveSet)
    patience: int | None = None
    schedule: AnnealingSchedule = field(default_factory=AnnealingSchedule)
    augmentation_criterion: AugmentationCriterion = DEFAULT_CRITERION
    kbz_weight: AugmentationCriterion = DEFAULT_WEIGHT
    local_improvement_max_passes: int | None = None
    sa_bound_pruning: bool = False

    def with_overrides(self, **overrides) -> "MethodParams":
        return replace(self, **overrides)


class Strategy(ABC):
    """A complete optimization method behind ``optimize()``."""

    name: str = "abstract"
    description: str = ""
    #: Whether the method's outcome depends on its random stream.  The
    #: resilient fallback chain retries stochastic methods with rotated
    #: derived seeds; deterministic (pure-heuristic) methods get a single
    #: retry, since re-running them with a new seed changes nothing.
    stochastic: bool = True

    @abstractmethod
    def run(
        self, evaluator: Evaluator, rng: random.Random, params: MethodParams
    ) -> None:
        """Consume the evaluator's budget; the evaluator keeps the best."""

    def _random_starts(
        self, evaluator: Evaluator, rng: random.Random
    ) -> Iterator[JoinOrder]:
        """The random state generator, as an infinite stream."""
        while True:
            yield random_valid_order(evaluator.graph, rng)


# ----------------------------------------------------------------------
# Simple techniques (Section 3, plus the SG88 baselines)
# ----------------------------------------------------------------------


class IterativeImprovementStrategy(Strategy):
    name = "II"
    description = "iterative improvement from random start states"

    def run(self, evaluator, rng, params):
        multi_start_improvement(
            self._random_starts(evaluator, rng),
            evaluator,
            params.move_set,
            rng,
            patience=params.patience,
        )


class RandomSamplingStrategy(Strategy):
    """SG88's weakest baseline: evaluate random valid orders, keep best."""

    name = "RANDOM"
    description = "random sampling of valid join orders (SG88 baseline)"

    #: Starts priced per kernel sweep on a batch-capable evaluator.
    batch_size = 64

    def run(self, evaluator, rng, params):
        try:
            if evaluator.supports_batch:
                self._run_batched(evaluator, rng)
                return
            for start in self._random_starts(evaluator, rng):
                evaluator.evaluate(start)
        except BudgetExhausted:
            pass

    def _run_batched(self, evaluator, rng):
        """Sample in batches: evaluation draws nothing from the RNG, so
        pre-generating a batch of starts consumes the exact scalar stream."""
        while True:
            starts = [
                random_valid_order(evaluator.graph, rng)
                for _ in range(self.batch_size)
            ]
            costs, saturations = evaluator.price_batch(
                [start.positions for start in starts]
            )
            for index, start in enumerate(starts):
                evaluator.consume(start, costs[index], saturations[index])


class PerturbationWalkStrategy(Strategy):
    """SG88's random walk: accept every move, remember the best state."""

    name = "WALK"
    description = "perturbation walk accepting every move (SG88 baseline)"

    def run(self, evaluator, rng, params):
        from repro.core.moves import NoValidMove

        try:
            current = random_valid_order(evaluator.graph, rng)
            evaluator.evaluate(current)
            while True:
                try:
                    move, neighbor = params.move_set.random_valid_move(
                        current, evaluator.graph, rng
                    )
                except NoValidMove:
                    current = random_valid_order(evaluator.graph, rng)
                    evaluator.evaluate(current)
                    continue
                evaluator.evaluate_candidate(
                    neighbor, first_changed=move.first_changed
                )
                evaluator.commit_candidate(neighbor)
                current = neighbor
        except BudgetExhausted:
            pass


class SimulatedAnnealingStrategy(Strategy):
    name = "SA"
    description = "simulated annealing from a random start state"

    def _starts(self, evaluator, rng, params) -> Iterator[JoinOrder]:
        return self._random_starts(evaluator, rng)

    def run(self, evaluator, rng, params):
        tracer = evaluator.tracer
        try:
            for index, start in enumerate(self._starts(evaluator, rng, params)):
                if tracer.enabled:
                    tracer.emit(obs_events.RESTART, index=index)
                    tracer.metrics.inc("restarts")
                simulated_annealing(
                    start,
                    evaluator,
                    params.move_set,
                    rng,
                    params.schedule,
                    bound_pruning=params.sa_bound_pruning,
                )
                if evaluator.budget.exhausted:
                    break
        except BudgetExhausted:
            pass


class SAAStrategy(SimulatedAnnealingStrategy):
    name = "SAA"
    description = "simulated annealing started from an augmentation state"

    def _starts(self, evaluator, rng, params):
        heuristic = augmentation_orders(
            evaluator.graph, params.augmentation_criterion, evaluator.budget
        )
        return itertools.chain(
            itertools.islice(heuristic, 1), self._random_starts(evaluator, rng)
        )


class SAKStrategy(SimulatedAnnealingStrategy):
    name = "SAK"
    description = "simulated annealing started from the KBZ state"

    def _starts(self, evaluator, rng, params):
        yield _best_kbz_state(evaluator, params).order
        yield from self._random_starts(evaluator, rng)


class TwoPhaseStrategy(Strategy):
    """Two-phase optimization (Ioannidis & Kang's 2PO, the successor of
    this line of work): spend most of the budget on multi-start II, then
    anneal from the best local minimum at a low initial temperature.

    Not one of the paper's nine methods — included as a demonstration of
    its closing claim that the framework lets *candidate* heuristics be
    compared against the recommended ones.
    """

    name = "2PO"
    description = "II phase, then low-temperature SA from the best minimum"
    ii_share = 0.7

    def run(self, evaluator, rng, params):
        tracer = evaluator.tracer
        ii_budget = evaluator.budget.remaining * self.ii_share
        ii_limit = evaluator.budget.spent + ii_budget
        starts = itertools.chain(
            augmentation_orders(
                evaluator.graph, params.augmentation_criterion, evaluator.budget
            ),
            self._random_starts(evaluator, rng),
        )
        best: Evaluation | None = None
        if tracer.enabled:
            tracer.phase_start("ii_phase", share=self.ii_share)
        try:
            for start in starts:
                local = improvement_run(
                    start, evaluator, params.move_set, rng, patience=params.patience
                )
                if local is not None and (best is None or local.cost < best.cost):
                    best = local
                if evaluator.budget.spent >= ii_limit:
                    break
        except BudgetExhausted:
            return
        finally:
            if tracer.enabled:
                tracer.phase_end("ii_phase")
        if best is None:
            return
        # Phase 2: a cool anneal around the best minimum.
        schedule = replace(params.schedule, initial_acceptance=0.05)
        if tracer.enabled:
            tracer.phase_start("anneal_phase")
        try:
            simulated_annealing(
                best.order,
                evaluator,
                params.move_set,
                rng,
                schedule,
                bound_pruning=params.sa_bound_pruning,
            )
        except BudgetExhausted:
            pass
        finally:
            if tracer.enabled:
                tracer.phase_end("anneal_phase")


# ----------------------------------------------------------------------
# Combinations with iterative improvement (Section 4.4)
# ----------------------------------------------------------------------


def _best_kbz_state(evaluator: Evaluator, params: MethodParams) -> Evaluation:
    """Run algorithms G + T fully; return the cheapest per-root order."""
    best: Evaluation | None = None
    for order in kbz_orders(evaluator.graph, params.kbz_weight, evaluator.budget):
        cost = evaluator.evaluate(order)
        if best is None or cost < best.cost:
            best = Evaluation(order, cost)
    assert best is not None
    return best


class IAIStrategy(Strategy):
    name = "IAI"
    description = "II started from augmentation states, then random states"

    def _heuristic_starts(self, evaluator, params) -> Iterator[JoinOrder]:
        return augmentation_orders(
            evaluator.graph, params.augmentation_criterion, evaluator.budget
        )

    def run(self, evaluator, rng, params):
        starts = itertools.chain(
            self._heuristic_starts(evaluator, params),
            self._random_starts(evaluator, rng),
        )
        multi_start_improvement(
            starts, evaluator, params.move_set, rng, patience=params.patience
        )


class IKIStrategy(IAIStrategy):
    name = "IKI"
    description = "II started from KBZ per-root states, then random states"

    def _heuristic_starts(self, evaluator, params):
        return kbz_orders(evaluator.graph, params.kbz_weight, evaluator.budget)


class IALStrategy(Strategy):
    name = "IAL"
    description = (
        "II from augmentation states, then local improvement on the best"
    )

    def run(self, evaluator, rng, params):
        graph = evaluator.graph
        tracer = evaluator.tracer
        best: Evaluation | None = None
        try:
            if tracer.enabled:
                tracer.phase_start("heuristic_ii")
            for start in augmentation_orders(
                graph, params.augmentation_criterion, evaluator.budget
            ):
                local = improvement_run(
                    start, evaluator, params.move_set, rng, patience=params.patience
                )
                if local is not None and (best is None or local.cost < best.cost):
                    best = local
            if tracer.enabled:
                tracer.phase_end("heuristic_ii")
            # Augmentation states exhausted: polish the best local minimum
            # with the strongest local-improvement pass that still fits.
            while best is not None:
                strategy = best_strategy_for_budget(
                    evaluator.budget.remaining, graph.n_relations
                )
                if strategy is None:
                    break
                improved = local_improve(
                    best,
                    evaluator,
                    *strategy,
                    max_passes=params.local_improvement_max_passes,
                )
                if improved.order == best.order:
                    break
                best = improved
            # Any leftover budget goes to II from random states.
            multi_start_improvement(
                self._random_starts(evaluator, rng),
                evaluator,
                params.move_set,
                rng,
                patience=params.patience,
            )
        except BudgetExhausted:
            pass


class AGIStrategy(Strategy):
    name = "AGI"
    description = "augmentation states evaluated directly, then II"

    def _heuristic_starts(self, evaluator, params) -> Iterator[JoinOrder]:
        return augmentation_orders(
            evaluator.graph, params.augmentation_criterion, evaluator.budget
        )

    def run(self, evaluator, rng, params):
        tracer = evaluator.tracer
        if tracer.enabled:
            tracer.phase_start("heuristic_seed")
        try:
            for order in self._heuristic_starts(evaluator, params):
                evaluator.evaluate(order)
        except BudgetExhausted:
            return
        finally:
            if tracer.enabled:
                tracer.phase_end("heuristic_seed")
        multi_start_improvement(
            self._random_starts(evaluator, rng),
            evaluator,
            params.move_set,
            rng,
            patience=params.patience,
        )


class KBIStrategy(AGIStrategy):
    name = "KBI"
    description = "KBZ states evaluated directly, then II"

    def _heuristic_starts(self, evaluator, params):
        return kbz_orders(evaluator.graph, params.kbz_weight, evaluator.budget)


# ----------------------------------------------------------------------
# Pure heuristics (for Tables 1 and 2)
# ----------------------------------------------------------------------


class PureAugmentationStrategy(Strategy):
    """Generate and evaluate the augmentation states, then stop."""

    stochastic = False

    def __init__(self, criterion: AugmentationCriterion) -> None:
        self.criterion = criterion
        self.name = f"AUG{int(criterion)}"
        self.description = (
            f"augmentation heuristic alone, chooseNext criterion {int(criterion)}"
        )

    def run(self, evaluator, rng, params):
        try:
            for order in augmentation_orders(
                evaluator.graph, self.criterion, evaluator.budget
            ):
                evaluator.evaluate(order)
        except BudgetExhausted:
            pass


class PureKBZStrategy(Strategy):
    """Generate and evaluate the KBZ per-root states, then stop."""

    stochastic = False

    def __init__(self, weight: AugmentationCriterion) -> None:
        self.weight = weight
        self.name = f"KBZ{int(weight)}"
        self.description = (
            f"KBZ heuristic alone, spanning-tree weight criterion {int(weight)}"
        )

    def run(self, evaluator, rng, params):
        try:
            for order in kbz_orders(evaluator.graph, self.weight, evaluator.budget):
                evaluator.evaluate(order)
        except BudgetExhausted:
            pass


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_FACTORIES: dict[str, Callable[[], Strategy]] = {
    "II": IterativeImprovementStrategy,
    "RANDOM": RandomSamplingStrategy,
    "WALK": PerturbationWalkStrategy,
    "SA": SimulatedAnnealingStrategy,
    "SAA": SAAStrategy,
    "SAK": SAKStrategy,
    "IAI": IAIStrategy,
    "IKI": IKIStrategy,
    "IAL": IALStrategy,
    "AGI": AGIStrategy,
    "KBI": KBIStrategy,
    "2PO": TwoPhaseStrategy,
}
for _criterion in AugmentationCriterion:
    _FACTORIES[f"AUG{int(_criterion)}"] = (
        lambda c=_criterion: PureAugmentationStrategy(c)
    )
for _weight in (3, 4, 5):
    _FACTORIES[f"KBZ{_weight}"] = (
        lambda w=_weight: PureKBZStrategy(AugmentationCriterion(w))
    )
_FACTORIES["AUG"] = _FACTORIES["AUG3"]
_FACTORIES["KBZ"] = _FACTORIES["KBZ3"]


def _simpli_squared_factory() -> Strategy:
    # Imported lazily: repro.core.simpli inherits Strategy from here.
    from repro.core.simpli import SimpliSquaredStrategy

    return SimpliSquaredStrategy()


_FACTORIES["SIMPLI_SQUARED"] = _simpli_squared_factory


def _exact_factory() -> Strategy:
    # Imported lazily: repro.core.exact inherits Strategy from here.
    from repro.core.exact import ExactStrategy

    return ExactStrategy()


_FACTORIES["EXACT"] = _exact_factory

#: The nine methods of the paper's Figure 4, in its presentation order.
PAPER_METHODS = ("II", "SA", "SAA", "SAK", "IAI", "IKI", "IAL", "AGI", "KBI")

#: The top five the paper keeps after Figure 4.
TOP_FIVE_METHODS = ("IAI", "IAL", "AGI", "KBI", "II")


def available_method_names() -> list[str]:
    """Every method name accepted by :func:`make_strategy`."""
    return sorted(_FACTORIES)


def compare_methods(
    query,
    methods=PAPER_METHODS,
    *,
    model=None,
    time_factor: float = 9.0,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    seed: int = 0,
    params: MethodParams | None = None,
    workers: int | None = None,
    incremental: bool = True,
    batch_costing: bool = False,
    budget_accounting: str = PER_PLAN,
    stop_at_bound: bool = False,
    bound_tolerance: float = 1.05,
    failure_log=None,
):
    """Run several methods on one query; results keyed by method name.

    This is the multi-method comparison behind the paper's Figures 4–7
    and the CLI ``compare`` command.  With ``workers`` set, the methods
    run concurrently through :func:`repro.parallel.map_jobs` — each
    method is an independent ``optimize()`` call with its own budget and
    the *same* seed as the serial path, so the returned mapping is
    bit-identical for every worker count.  A worker crash is logged to
    ``failure_log`` (when given) and the method re-run serially.

    A method whose budget expires before any plan is evaluated raises
    :class:`~repro.core.budget.BudgetExhausted`, exactly as the serial
    loop would.
    """
    # Imported lazily: the optimizer module imports this one.
    from repro.core.optimizer import optimize

    methods = list(methods)
    if workers is None or workers <= 1 or len(methods) <= 1:
        return {
            name: optimize(
                query,
                method=name,
                model=model,
                time_factor=time_factor,
                units_per_n2=units_per_n2,
                seed=seed,
                params=params,
                stop_at_bound=stop_at_bound,
                bound_tolerance=bound_tolerance,
                incremental=incremental,
                batch_costing=batch_costing,
                budget_accounting=budget_accounting,
            )
            for name in methods
        }

    from repro.catalog.join_graph import Query as _Query
    from repro.cost.memory import MainMemoryCostModel
    from repro.parallel.orchestrator import OptimizeJob, map_jobs

    graph = query.graph if isinstance(query, _Query) else query
    jobs = [
        OptimizeJob(
            graph=graph,
            method=name,
            model=model if model is not None else MainMemoryCostModel(),
            seed=seed,
            index=index,
            tag=str(name),
            time_factor=time_factor,
            units_per_n2=units_per_n2,
            params=params,
            incremental=incremental,
            batch_costing=batch_costing,
            budget_accounting=budget_accounting,
            stop_at_bound=stop_at_bound,
            bound_tolerance=bound_tolerance,
        )
        for index, name in enumerate(methods)
    ]
    outcomes = map_jobs(jobs, workers, failure_log=failure_log)
    results = {}
    for name, outcome in zip(methods, outcomes):
        if outcome.result is None:
            raise BudgetExhausted(
                f"method {name}: {outcome.error or 'no plan evaluated'}"
            )
        # The worker's result carries a pickled copy of the graph; swap
        # the parent's object back in so the mapping compares equal to
        # the serial path's (JoinGraph has identity semantics).
        results[name] = replace(outcome.result, graph=graph)
    return results


def make_strategy(name: str | Strategy) -> Strategy:
    """Instantiate a strategy by its method name (case-insensitive).

    A :class:`Strategy` instance is passed through unchanged, which lets
    tests and the fault-injection harness drive wrapped or custom
    strategies through ``optimize()`` without registering them.
    """
    if isinstance(name, Strategy):
        return name
    try:
        factory = _FACTORIES[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; available: {available_method_names()}"
        ) from None
    return factory()
