"""The augmentation heuristic (the paper's §4.1, Figure 3).

A join order is grown left to right.  The first relation is picked by some
criterion (the paper picks firsts in order of increasing size, generating
up to ``N + 1`` permutations — one per choice of first relation).  At each
subsequent step ``chooseNext(S, T)`` selects, among the unplaced relations
that join with at least one placed relation (so only valid orders are
generated), the relation minimizing one of five criteria, with ``i``
ranging over the placed set ``S`` and ``j`` over the candidates:

1. ``min N_j`` — smallest cardinality;
2. ``max deg(j)`` — highest join-graph degree;
3. ``min J_ij`` — smallest join selectivity for the next join
   (**the winner in the paper's Table 1**);
4. ``min N_i N_j J_ij`` — smallest next intermediate result;
5. ``min (N_i N_j J_ij - 1) / (0.5 N_i (N_j / D_j))`` — smallest KBZ rank.

All quantities are base-relation statistics (the paper's ``N_k`` is the
post-selection cardinality), and criteria 3–5 are minimized over the
individual predicates ``(i, j)`` linking a candidate to the placed set.
Ties break on the relation index, so each (first, criterion) pair yields
one deterministic permutation, as in the paper.

If the frontier empties while relations remain (disconnected graph), the
remaining relations are treated as cross-product candidates — callers
normally split components first.
"""

from __future__ import annotations

import math
from enum import IntEnum
from typing import Iterator

from repro.catalog.join_graph import JoinGraph
from repro.core.budget import CRITERION_CHARGE, Budget
from repro.plans.join_order import JoinOrder


class AugmentationCriterion(IntEnum):
    """The five ``chooseNext`` criteria of the paper's §4.1."""

    MIN_CARDINALITY = 1
    MAX_DEGREE = 2
    MIN_SELECTIVITY = 3
    MIN_RESULT_SIZE = 4
    MIN_RANK = 5


#: The criterion the paper's Table 1 selects as the best; used everywhere
#: the augmentation heuristic participates in a combined method.
DEFAULT_CRITERION = AugmentationCriterion.MIN_SELECTIVITY


def _score(
    graph: JoinGraph,
    placed_set: set[int],
    candidate: int,
    criterion: AugmentationCriterion,
) -> float:
    """Criterion value for ``candidate``; lower is better for every
    criterion (criterion 2 is negated)."""
    if criterion is AugmentationCriterion.MIN_CARDINALITY:
        return graph.cardinality(candidate)
    if criterion is AugmentationCriterion.MAX_DEGREE:
        return -float(graph.degree(candidate))

    predicates = graph.edges_between(placed_set, candidate)
    if not predicates:
        # Cross-product candidate: worst possible under criteria 3-5.
        return math.inf

    inner_size = graph.cardinality(candidate)
    best = math.inf
    for predicate in predicates:
        selectivity = predicate.selectivity
        if criterion is AugmentationCriterion.MIN_SELECTIVITY:
            value = selectivity
        else:
            outer = predicate.other(candidate)
            outer_size = graph.cardinality(outer)
            result = outer_size * inner_size * selectivity
            if criterion is AugmentationCriterion.MIN_RESULT_SIZE:
                value = result
            elif criterion is AugmentationCriterion.MIN_RANK:
                distinct = predicate.distinct_values(candidate)
                cost_proxy = 0.5 * outer_size * (inner_size / distinct)
                value = (result - 1.0) / max(cost_proxy, 1e-30)
            else:
                raise ValueError(f"unknown criterion {criterion!r}")
        best = min(best, value)
    return best


def choose_next(
    graph: JoinGraph,
    placed_set: set[int],
    unplaced: set[int],
    criterion: AugmentationCriterion,
    budget: Budget | None = None,
) -> int:
    """The paper's ``chooseNext(S, T)``: pick the next relation to place.

    Only relations joining the placed set are candidates; when none exists
    (disconnected graph) every unplaced relation becomes a candidate.
    Charges :data:`~repro.core.budget.CRITERION_CHARGE` per scored
    candidate when a budget is supplied.
    """
    candidates = sorted(
        t
        for t in unplaced
        if any(n in placed_set for n in graph.neighbors(t))
    )
    if not candidates:
        candidates = sorted(unplaced)
    if budget is not None:
        budget.charge(CRITERION_CHARGE * len(candidates))
    return min(
        candidates,
        key=lambda c: (_score(graph, placed_set, c, criterion), c),
    )


def augment_order(
    graph: JoinGraph,
    first: int,
    criterion: AugmentationCriterion = DEFAULT_CRITERION,
    budget: Budget | None = None,
) -> JoinOrder:
    """Grow one complete join order starting from relation ``first``."""
    placed = [first]
    placed_set = {first}
    unplaced = set(range(graph.n_relations)) - placed_set
    while unplaced:
        nxt = choose_next(graph, placed_set, unplaced, criterion, budget)
        placed.append(nxt)
        placed_set.add(nxt)
        unplaced.remove(nxt)
    return JoinOrder(placed)


def first_relation_sequence(graph: JoinGraph) -> list[int]:
    """First-relation choices in the paper's order: increasing size."""
    return sorted(range(graph.n_relations), key=lambda i: (graph.cardinality(i), i))


def augmentation_orders(
    graph: JoinGraph,
    criterion: AugmentationCriterion = DEFAULT_CRITERION,
    budget: Budget | None = None,
) -> Iterator[JoinOrder]:
    """The up-to-``N + 1`` orders, firsts taken in increasing-size order.

    Lazily generated so budget exhaustion mid-stream stops cleanly.
    """
    for first in first_relation_sequence(graph):
        yield augment_order(graph, first, criterion, budget)
