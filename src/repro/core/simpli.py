"""Simpli-Squared: join ordering from base-table sizes alone.

The provocative baseline of "Simpli-Squared: A Simple Yet Surprisingly
Strong Join Ordering" (arXiv 2111.00163): throw away *all* derived
statistics — selectivities, distinct counts, selection estimates — and
order the joins purely by raw base-table size, smallest first, staying
connected.  It cannot be fooled by estimation errors because it never
consults an estimate; the paper's methods (II/SA/heuristics), which do,
must beat it even when their inputs are wrong to justify their cost.
The robustness harness (:mod:`repro.robustness.harness`) runs it as the
reference floor of every q-error-vs-regret curve.

Registered as method name ``"SIMPLI_SQUARED"`` (accepted case-insensitively
by ``optimize()`` / ``compare_methods``).
"""

from __future__ import annotations

import random

from repro.catalog.join_graph import JoinGraph
from repro.core.budget import BudgetExhausted
from repro.core.combinations import MethodParams, Strategy
from repro.core.state import Evaluator
from repro.plans.join_order import JoinOrder


def simpli_squared_order(graph: JoinGraph) -> JoinOrder:
    """The Simpli-Squared join order of ``graph``.

    Start from the relation with the smallest **base** cardinality (raw
    table size, before selections — Simpli-Squared uses no estimates);
    repeatedly append the smallest-base-cardinality relation adjacent to
    the placed set, falling back to the smallest remaining relation when
    no adjacent one exists (disconnected graphs).  Ties break on the
    relation index, so the order is a pure function of the graph.
    """
    n = graph.n_relations

    def key(index: int) -> tuple[float, int]:
        return (graph.relation(index).base_cardinality, index)

    remaining = set(range(n))
    # detlint: ignore[DET003] -- key is injective; min() is order-independent
    first = min(remaining, key=key)
    order = [first]
    remaining.discard(first)
    frontier = {v for v in graph.neighbors(first) if v in remaining}
    while remaining:
        pool = frontier if frontier else remaining
        chosen = min(pool, key=key)
        order.append(chosen)
        remaining.discard(chosen)
        frontier.discard(chosen)
        frontier.update(v for v in graph.neighbors(chosen) if v in remaining)
    return JoinOrder(order)


class SimpliSquaredStrategy(Strategy):
    """The Simpli-Squared baseline as an ``optimize()`` strategy.

    Deterministic and estimate-free: it prices exactly one order — the
    one :func:`simpli_squared_order` produces — and stops.  Like the
    pure heuristics, it cannot exploit leftover budget.
    """

    name = "SIMPLI_SQUARED"
    description = "Simpli-Squared: order by base-table size only, no estimates"
    stochastic = False

    def run(
        self, evaluator: Evaluator, rng: random.Random, params: MethodParams
    ) -> None:
        try:
            evaluator.evaluate(simpli_squared_order(evaluator.graph))
        except BudgetExhausted:
            pass
