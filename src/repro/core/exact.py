"""Exact branch-and-bound join ordering under the true cost models.

:mod:`repro.core.dynamic_programming` is exact only under the *static*
estimator: distinct-value propagation makes a plan's suffix cost depend
on its prefix order, which breaks the Bellman principle subset DP needs.
This module closes that gap with a memoized best-first branch-and-bound
over left-deep orders that searches **prefixes**, not subsets, and so is
exact under the propagating estimator the rest of the library actually
optimizes for (and, through a second engine, under
:class:`~repro.cost.static.StaticCostModel` too).

Design (and why the result is *bitwise* minimal, not merely
mathematically minimal — the differential suite in
``tests/test_core_exact.py`` compares against exhaustive enumeration
with ``==``):

* **Cost chains replicate the estimator op for op.**  Prefixes are
  extended through :func:`repro.cost.incremental.extend_state` (the
  incremental evaluator's step arithmetic) or the static model's own
  per-step expressions, so a completed chain's cost is the identical
  float ``plan_cost`` returns for that order.
* **Pruning uses only the running prefix cost.**  A node is discarded
  when its accumulated cost ``g`` already reaches the incumbent: join
  costs are non-negative, and float addition of non-negative terms is
  monotone, so every completion of the node computes a total ``>= g``
  *in float arithmetic*.  The admissible-looking remainder estimate
  ``h`` (each unplaced relation's cheapest conceivable join) orders the
  frontier — best-first — but is never used to prune, because ``g + h``
  re-associates the final sum and could exceed a completion's computed
  total by an ulp near ties.
* **Dominance memoization, propagating engine only.**  Two prefixes over
  the same relation set are compared componentwise
  (:func:`repro.cost.incremental.dominates`); a dominated prefix cannot
  complete cheaper, bitwise, because every downstream operation is
  float-monotone in the dominated components.  The static engine walks
  the placed *list* in order (its per-step selectivities are not
  mask-determined), so it runs without dominance.
* **Disconnected graphs are searched natively**: the branching rule is
  exactly :func:`repro.plans.validity.first_invalid_position`'s — finish
  the open component before starting another — so the search space *is*
  the valid-order space and cross products never appear mid-component.

The frontier is seeded with greedy/KBZ/augmentation incumbents polished
by a short iterative-improvement descent, which gives bound pruning
teeth from the first expansion.  Feasibility: exhaustive enumeration
dies around 10 relations; the branch-and-bound is comfortable to
N≈15–18 depending on graph shape (see ``docs/exact.md`` and
``benchmarks/test_perf_exact.py``).  Beyond the frontier,
:func:`hybrid_optimum` contracts the graph to a small cluster skeleton,
solves the skeleton and the cluster interiors exactly, expands, and
polishes with the existing II machinery — a certified-*construction*
(not certified-optimal) mode, reported with ``proven=False``.

The optimality-gap surface (:func:`optimality_gap`,
:func:`build_gap_report`, :func:`gap_report_json`) turns any
``compare_methods`` result mapping into *true cost / exact optimum*
ratios with a byte-stable JSON rendering; the CLI's ``repro gap`` and
``repro compare --gap`` are thin wrappers over it.
"""

from __future__ import annotations

import heapq
import json
import math
import random
from dataclasses import dataclass
from typing import Any, Mapping

from repro.catalog.join_graph import JoinGraph, Query
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation
from repro.core.budget import Budget, BudgetExhausted, DEFAULT_UNITS_PER_N2
from repro.core.combinations import MethodParams, Strategy
from repro.core.iterative import improvement_run
from repro.core.moves import MoveSet
from repro.core.state import Evaluation, Evaluator, DeltaEvaluator
from repro.cost.base import CostModel
from repro.cost.bounds import lower_bound
from repro.cost.cardinality import (
    MAX_CARDINALITY,
    CostOverflowError,
    combined_selectivity,
    prefix_cardinalities,
)
from repro.cost.incremental import (
    PrefixState,
    QueryContext,
    dominates,
    extend_state,
    start_state,
    supports_incremental,
)
from repro.cost.memory import MainMemoryCostModel
from repro.cost.static import StaticCostModel
from repro.obs import events as obs_events
from repro.obs.tracer import Tracer, as_tracer
from repro.plans.join_order import JoinOrder
from repro.plans.validity import first_invalid_position, random_valid_order
from repro.utils.rng import derive_rng

__all__ = [
    "DEFAULT_MAX_EXACT",
    "ExactResult",
    "ExactStrategy",
    "GapReport",
    "GapRow",
    "build_gap_report",
    "exact_feasible",
    "exact_optimum",
    "gap_report_json",
    "hybrid_optimum",
    "optimality_gap",
]

#: Relation-count ceiling for the pure branch-and-bound entry point.
#: Chosen from the feasibility measurements in BENCH_exact.json: chains
#: and stars stay sub-second well past this, dense cyclic graphs start
#: to strain around it.
DEFAULT_MAX_EXACT = 16

#: Budget units charged per node extension — one join-cost evaluation,
#: the same unit every other method's accounting is denominated in.
_EXTEND_CHARGE = 1.0

_MODE_BNB = "branch-and-bound"
_MODE_HYBRID = "hybrid"

#: Restart cap for the hybrid polish phase — the budget is the real
#: governor; this only keeps an unlimited budget from looping forever.
_MAX_POLISH_RESTARTS = 256


@dataclass(frozen=True)
class ExactResult:
    """Outcome of an exact (or hybrid) optimization pass.

    ``proven`` distinguishes a certificate of optimality (the search ran
    to completion) from a best-effort answer (budget expired with
    ``allow_partial``, or hybrid mode, which never proves anything about
    the full graph).  ``cost`` is always the true ``plan_cost`` of
    ``order`` under the model searched — bitwise.
    """

    order: JoinOrder
    cost: float
    proven: bool
    mode: str
    n_relations: int
    nodes_expanded: int
    nodes_pruned_bound: int
    nodes_pruned_dominated: int
    incumbent_updates: int
    n_cost_evaluations: int
    units_spent: float
    lower_bound: float


# ----------------------------------------------------------------------
# Search engines: one per cost-model semantics
# ----------------------------------------------------------------------


class _StaticState:
    """Prefix state of the static (non-propagating) walk."""

    __slots__ = ("mask", "size", "cost")

    def __init__(self, mask: int, size: float, cost: float) -> None:
        self.mask = mask
        self.size = size
        self.cost = cost


class _PropagatingEngine:
    """Extends prefixes with the propagating estimator's arithmetic."""

    #: Componentwise dominance is bitwise-sound here (see module doc).
    dominance = True

    def __init__(self, graph: JoinGraph, model: CostModel) -> None:
        self._context = QueryContext(graph, model)

    def start(self, first: int) -> PrefixState:
        return start_state(self._context, first)

    def extend(
        self, order: tuple[int, ...], state: Any, vertex: int
    ) -> PrefixState:
        return extend_state(self._context, state, vertex)


class _StaticEngine:
    """Extends prefixes with :class:`StaticCostModel`'s arithmetic.

    The static walk reads the placed *list* in order
    (``graph.edges_between(placed, vertex)``), so the per-step
    expressions here consume the node's order tuple — same calls, same
    sequence, bitwise-identical totals to ``StaticCostModel.plan_cost``.
    No dominance: static sizes are subset-determined mathematically but
    their float values are path-dependent (selectivity products multiply
    in placed-list order), so only the airtight ``g``-prune applies.
    """

    dominance = False

    def __init__(self, graph: JoinGraph, model: StaticCostModel) -> None:
        self._graph = graph
        self._model = model

    def start(self, first: int) -> _StaticState:
        return _StaticState(
            1 << first, self._graph.cardinality(first), 0.0
        )

    def extend(
        self, order: tuple[int, ...], state: Any, vertex: int
    ) -> _StaticState:
        graph = self._graph
        predicates = graph.edges_between(order, vertex)
        inner_size = graph.cardinality(vertex)
        result = state.size * inner_size * combined_selectivity(predicates)
        cost = state.cost + self._model.inner.join_cost(
            state.size, inner_size, result
        )
        return _StaticState(state.mask | (1 << vertex), result, cost)


def _engine_for(
    graph: JoinGraph, model: CostModel
) -> "_PropagatingEngine | _StaticEngine":
    if supports_incremental(model):
        return _PropagatingEngine(graph, model)
    if isinstance(model, StaticCostModel):
        return _StaticEngine(graph, model)
    raise ValueError(
        f"cost model {model!r} overrides plan_cost with semantics the "
        "exact search cannot replicate; use the base propagating models "
        "or StaticCostModel"
    )


# ----------------------------------------------------------------------
# The branch-and-bound
# ----------------------------------------------------------------------


@dataclass
class _SearchStats:
    nodes_expanded: int = 0
    pruned_bound: int = 0
    pruned_dominated: int = 0
    incumbent_updates: int = 0
    n_cost_evaluations: int = 0
    overflowed: int = 0


def _greedy_order(graph: JoinGraph) -> JoinOrder:
    """A deterministic valid order: smallest-cardinality greedy growth.

    Serves as the always-available incumbent seed (the heuristic
    generators require connected graphs; this works on any graph) —
    components are emitted contiguously, each grown from its smallest
    relation by repeatedly appending the smallest adjacent one.
    """
    order: list[int] = []
    for component in graph.components:
        members = list(component)
        start = min(members, key=lambda v: (graph.cardinality(v), v))
        placed = [start]
        placed_set = {start}
        while len(placed) < len(members):
            frontier = [
                v
                for v in members
                if v not in placed_set
                and any(u in placed_set for u in graph.neighbors(v))
            ]
            pick = min(frontier, key=lambda v: (graph.cardinality(v), v))
            placed.append(pick)
            placed_set.add(pick)
        order.extend(placed)
    return JoinOrder(order)


def _seed_incumbent(
    graph: JoinGraph,
    model: CostModel,
    budget: Budget,
    seed: int,
    tracer: Tracer,
) -> tuple[Evaluation | None, int]:
    """Evaluate heuristic starts and polish the best with a short II run.

    Returns the best evaluation found (``None`` only when the budget
    expired before the first one completed) and the number of join-cost
    evaluations spent.  All costs come from full evaluator walks, so the
    incumbent's cost is bitwise comparable with the search's own chains.
    """
    evaluator: Evaluator
    if supports_incremental(model):
        evaluator = DeltaEvaluator(graph, model, budget)
    else:
        evaluator = Evaluator(graph, model, budget)
    evaluator.tracer = tracer
    try:
        evaluator.evaluate(_greedy_order(graph))
        if graph.is_connected and graph.n_relations >= 3:
            # Imported lazily: both generator modules are heavyweight and
            # connected-only; the greedy seed above covers the rest.
            from repro.core.augmentation import (
                DEFAULT_CRITERION,
                augmentation_orders,
            )
            from repro.core.kbz import DEFAULT_WEIGHT, kbz_orders

            for order in kbz_orders(graph, DEFAULT_WEIGHT, budget):
                evaluator.evaluate(order)
            for order in augmentation_orders(graph, DEFAULT_CRITERION, budget):
                evaluator.evaluate(order)
        if evaluator.best is not None:
            improvement_run(
                evaluator.best.order,
                evaluator,
                MoveSet(),
                derive_rng(seed, "exact", "incumbent", graph.n_relations),
                start_cost=evaluator.best.cost,
            )
    # boundary: seeding is best-effort — an overflowing heuristic order
    # or an expired budget leaves whatever incumbent was recorded; the
    # search itself decides whether that is fatal.
    except (BudgetExhausted, CostOverflowError, OverflowError):
        pass
    joins = getattr(
        evaluator, "n_joins_evaluated",
        evaluator.n_evaluations * graph.n_joins,
    )
    return evaluator.best, int(joins)


def _branch_and_bound(
    graph: JoinGraph,
    model: CostModel,
    engine: "_PropagatingEngine | _StaticEngine",
    budget: Budget,
    incumbent: Evaluation | None,
    tracer: Tracer,
    stats: _SearchStats,
) -> tuple[tuple[int, ...] | None, float]:
    """Best-first search over valid prefixes; returns (order, cost).

    Raises :class:`BudgetExhausted` mid-search (the caller decides
    whether the incumbent reached so far is an acceptable answer) and
    returns ``(None, inf)`` only when every valid order overflowed.
    """
    n = graph.n_relations
    full = (1 << n) - 1
    neighbor_masks: list[int] = []
    for vertex in range(n):
        mask = 0
        for neighbor in sorted(graph.neighbors(vertex)):
            mask |= 1 << neighbor
        neighbor_masks.append(mask)
    component_of = [0] * n
    component_masks: list[int] = []
    for index, component in enumerate(graph.components):
        mask = 0
        for vertex in component:
            component_of[vertex] = index
            mask |= 1 << vertex
        component_masks.append(mask)

    # Frontier priority: g + h with h the sum, over unplaced relations,
    # of the cheapest join that could ever involve them (outer and
    # result collapsed to one tuple).  Ordering only — never pruning.
    floors: list[float] = []
    for vertex in range(n):
        try:
            floor = model.join_cost(1.0, graph.cardinality(vertex), 1.0)
        # boundary: a model that cannot even price the floor join forfeits
        # the heuristic ordering for this relation, nothing else.
        except (OverflowError, ValueError):
            floor = 0.0
        floors.append(floor if math.isfinite(floor) else 0.0)
    total_floor = sum(floors)

    best_cost = math.inf
    best_order: tuple[int, ...] | None = None
    if incumbent is not None:
        best_cost = incumbent.cost
        best_order = incumbent.order.positions

    counter = 0
    # Heap entries: (priority, insertion counter, order, state, h,
    # adjacency mask of the placed set).  The counter makes equal
    # priorities pop in insertion order — fully deterministic.
    heap: list[tuple[float, int, tuple[int, ...], Any, float, int]] = []
    store: dict[int, list[PrefixState]] = {}
    use_dominance = engine.dominance
    for first in range(n):
        state = engine.start(first)
        h = total_floor - floors[first]
        heapq.heappush(
            heap, (state.cost + h, counter, (first,), state, h, neighbor_masks[first])
        )
        counter += 1
        if use_dominance:
            store[state.mask] = [state]

    while heap:
        _, _, order, state, h, adjacent = heapq.heappop(heap)
        if state.cost >= best_cost:
            stats.pruned_bound += 1
            continue
        stats.nodes_expanded += 1
        mask = state.mask
        open_remaining = component_masks[component_of[order[-1]]] & ~mask
        if open_remaining:
            candidates = adjacent & ~mask
        else:
            candidates = ~mask & full
        while candidates:
            low_bit = candidates & -candidates
            candidates ^= low_bit
            vertex = low_bit.bit_length() - 1
            budget.charge(_EXTEND_CHARGE)
            stats.n_cost_evaluations += 1
            try:
                child = engine.extend(order, state, vertex)
            # boundary: an overflowing prefix means every completion of
            # it overflows too (the walk is prefix-deterministic), i.e.
            # plan_cost raises for all of them — the branch holds no
            # finite-cost orders to find.
            except (CostOverflowError, OverflowError):
                stats.overflowed += 1
                continue
            if not math.isfinite(child.cost):
                stats.overflowed += 1
                continue
            if child.cost >= best_cost:
                stats.pruned_bound += 1
                continue
            child_mask = child.mask
            if child_mask == full:
                best_cost = child.cost
                best_order = order + (vertex,)
                stats.incumbent_updates += 1
                if tracer.enabled:
                    tracer.emit(obs_events.BEST, cost=child.cost)
                continue
            if use_dominance:
                bucket = store.get(child_mask)
                if bucket is None:
                    store[child_mask] = [child]
                elif any(dominates(kept, child) for kept in bucket):
                    stats.pruned_dominated += 1
                    continue
                else:
                    bucket.append(child)
            child_h = h - floors[vertex]
            heapq.heappush(
                heap,
                (
                    child.cost + child_h,
                    counter,
                    order + (vertex,),
                    child,
                    child_h,
                    adjacent | neighbor_masks[vertex],
                ),
            )
            counter += 1
    return best_order, best_cost


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def _flush_trace(tracer: Tracer, sink: str | None) -> None:
    """Write the trace file when the caller asked for one by path."""
    if sink is None:
        return
    from repro.obs.writer import write_trace

    write_trace(getattr(tracer, "events", []), sink)


def exact_feasible(
    graph: JoinGraph, max_relations: int = DEFAULT_MAX_EXACT
) -> bool:
    """Whether the pure branch-and-bound is admissible for this graph."""
    return graph.n_relations <= max_relations


def exact_optimum(
    query: Query | JoinGraph,
    model: CostModel | None = None,
    *,
    budget: Budget | None = None,
    max_relations: int = DEFAULT_MAX_EXACT,
    seed: int = 0,
    allow_partial: bool = False,
    trace: Tracer | str | None = None,
) -> ExactResult:
    """The provably cheapest valid outer-linear order under ``model``.

    Works on connected and disconnected graphs alike (the branching rule
    enumerates exactly the valid orders).  ``budget`` is charged one
    unit per join-cost evaluation; on exhaustion the search raises
    :class:`BudgetExhausted` unless ``allow_partial`` is set, in which
    case the best incumbent found so far is returned with
    ``proven=False`` (still raising when not even one order completed).
    ``max_relations`` guards against accidentally launching an
    exponential search — raise it explicitly, or use
    :func:`hybrid_optimum` past the feasibility frontier.
    """
    graph = query.graph if isinstance(query, Query) else query
    if model is None:
        model = MainMemoryCostModel()
    n = graph.n_relations
    if n > max_relations:
        raise ValueError(
            f"exact search over {n} relations exceeds max_relations="
            f"{max_relations}; raise it explicitly or use hybrid_optimum"
        )
    engine = _engine_for(graph, model)
    tracer, sink = as_tracer(trace)
    if budget is None:
        budget = Budget.unlimited()
    if sink is not None:
        # We own this tracer (a path was passed); stamp its events with
        # this search's own logical clock.  A caller-owned tracer keeps
        # whatever clock its owner bound.
        tracer.bind_clock(budget)
    bound = lower_bound(graph, model)
    if n == 1:
        _flush_trace(tracer, sink)
        return ExactResult(
            order=JoinOrder([0]),
            cost=0.0,
            proven=True,
            mode=_MODE_BNB,
            n_relations=1,
            nodes_expanded=0,
            nodes_pruned_bound=0,
            nodes_pruned_dominated=0,
            incumbent_updates=0,
            n_cost_evaluations=0,
            units_spent=budget.spent,
            lower_bound=bound,
        )

    stats = _SearchStats()
    if tracer.enabled:
        tracer.phase_start("exact_seed")
    incumbent, seed_joins = _seed_incumbent(graph, model, budget, seed, tracer)
    stats.n_cost_evaluations += seed_joins
    if tracer.enabled:
        tracer.phase_end("exact_seed")
        tracer.phase_start("exact_bnb")
    proven = True
    try:
        best_order, best_cost = _branch_and_bound(
            graph, model, engine, budget, incumbent, tracer, stats
        )
    except BudgetExhausted:
        if not allow_partial or incumbent is None:
            if tracer.enabled:
                tracer.phase_end("exact_bnb")
            raise
        best_order, best_cost = incumbent.order.positions, incumbent.cost
        proven = False
    if tracer.enabled:
        tracer.phase_end("exact_bnb")
        metrics = tracer.metrics
        metrics.inc("exact_nodes_expanded", float(stats.nodes_expanded))
        metrics.inc("exact_nodes_pruned_bound", float(stats.pruned_bound))
        metrics.inc(
            "exact_nodes_pruned_dominated", float(stats.pruned_dominated)
        )
        metrics.inc(
            "exact_incumbent_updates", float(stats.incumbent_updates)
        )
    if best_order is None:
        raise CostOverflowError(
            f"every valid order of {n} relations overflows under "
            f"{model.name}; no finite-cost exact optimum exists"
        )
    _flush_trace(tracer, sink)
    return ExactResult(
        order=JoinOrder(best_order),
        cost=best_cost,
        proven=proven,
        mode=_MODE_BNB,
        n_relations=n,
        nodes_expanded=stats.nodes_expanded,
        nodes_pruned_bound=stats.pruned_bound,
        nodes_pruned_dominated=stats.pruned_dominated,
        incumbent_updates=stats.incumbent_updates,
        n_cost_evaluations=stats.n_cost_evaluations,
        units_spent=budget.spent,
        lower_bound=bound,
    )


# ----------------------------------------------------------------------
# Hybrid mode: contract, solve exactly, expand, polish
# ----------------------------------------------------------------------


def _contract_clusters(
    graph: JoinGraph, max_clusters: int, cluster_cap: int
) -> list[list[int]]:
    """Partition vertices into ≤ ``max_clusters`` connected clusters.

    Greedy edge contraction: repeatedly merge the adjacent cluster pair
    whose estimated join size (static, independence) is smallest — the
    most tightly joined pair, whose relative order the skeleton solve
    would get least wrong.  Deterministic tie-breaks on cluster indices;
    ``cluster_cap`` bounds cluster size so the interiors stay exactly
    solvable (relaxed, doubling, when it wedges the contraction).
    """
    n = graph.n_relations
    clusters: dict[int, list[int]] = {v: [v] for v in range(n)}
    sizes: dict[int, float] = {
        v: float(graph.cardinality(v)) for v in range(n)
    }
    selectivities: dict[tuple[int, int], float] = {}
    for predicate in graph.predicates:
        a, b = predicate.left, predicate.right
        key = (a, b) if a < b else (b, a)
        selectivities[key] = (
            selectivities.get(key, 1.0) * predicate.selectivity
        )
    cap = cluster_cap
    while len(clusters) > max_clusters and selectivities:
        best: tuple[float, int, int] | None = None
        for (a, b), joint in selectivities.items():
            if len(clusters[a]) + len(clusters[b]) > cap:
                continue
            estimate = sizes[a] * sizes[b] * joint
            if not math.isfinite(estimate):
                estimate = MAX_CARDINALITY
            candidate = (estimate, a, b)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            # Every adjacent pair exceeds the cap: relax it so the
            # contraction always terminates (oversized interiors fall
            # back to greedy ordering downstream).
            cap *= 2
            continue
        _, a, b = best
        clusters[a].extend(clusters[b])
        clusters[a].sort()
        merged_size = sizes[a] * sizes[b] * selectivities.pop((a, b))
        sizes[a] = min(max(merged_size, 1.0), MAX_CARDINALITY)
        del clusters[b]
        del sizes[b]
        for key in sorted(selectivities):
            if b not in key:
                continue
            other = key[0] if key[1] == b else key[1]
            joint = selectivities.pop(key)
            if other == a:
                continue
            new_key = (a, other) if a < other else (other, a)
            selectivities[new_key] = (
                selectivities.get(new_key, 1.0) * joint
            )
    return [clusters[root] for root in sorted(clusters)]


def _contracted_graph(
    graph: JoinGraph, clusters: list[list[int]]
) -> JoinGraph:
    """A join graph whose relations are the clusters.

    Cluster cardinalities are static size estimates of their interior
    joins; inter-cluster selectivities are the products of the crossing
    predicates', encoded as symmetric distinct counts ``1/s``.  Built
    with ``validate=False``: these are derived quantities, not catalog
    statistics, and may legitimately violate the catalog sanity checks.
    """
    cluster_of: dict[int, int] = {}
    for index, members in enumerate(clusters):
        for vertex in members:
            cluster_of[vertex] = index
    sizes: list[float] = []
    for members in clusters:
        size = float(graph.cardinality(members[0]))
        placed = [members[0]]
        for vertex in members[1:]:
            predicates = graph.edges_between(placed, vertex)
            size = size * graph.cardinality(vertex) * combined_selectivity(
                predicates
            )
            placed.append(vertex)
        sizes.append(min(max(size, 1.0), 1e15))
    relations = [
        Relation(f"cluster{index}", max(1, int(size)))
        for index, size in enumerate(sizes)
    ]
    crossing: dict[tuple[int, int], float] = {}
    for predicate in graph.predicates:
        a = cluster_of[predicate.left]
        b = cluster_of[predicate.right]
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        crossing[key] = crossing.get(key, 1.0) * predicate.selectivity
    predicates = []
    for (a, b) in sorted(crossing):
        distinct = max(1.0, 1.0 / crossing[(a, b)])
        predicates.append(JoinPredicate(a, b, distinct, distinct))
    return JoinGraph(relations, predicates, validate=False)


def _expand_skeleton(
    graph: JoinGraph,
    clusters: list[list[int]],
    skeleton_order: tuple[int, ...],
    local_orders: list[tuple[int, ...]],
) -> JoinOrder:
    """Interleave cluster-local orders along the skeleton order.

    Clusters are visited in skeleton order; within the active cluster,
    the next relation is the lowest-local-rank member adjacent to what
    is already placed (always exists: clusters are edge-connected and,
    after the first, the skeleton guarantees a crossing edge), so the
    result is a valid order by construction.
    """
    placed: list[int] = []
    placed_set: set[int] = set()
    for cluster_index in skeleton_order:
        local = local_orders[cluster_index]
        rank = {vertex: position for position, vertex in enumerate(local)}
        remaining = list(local)
        while remaining:
            if not placed:
                pick = remaining[0]
            else:
                frontier = [
                    vertex
                    for vertex in remaining
                    if any(u in placed_set for u in graph.neighbors(vertex))
                ]
                pool = frontier if frontier else remaining
                pick = min(pool, key=lambda vertex: (rank[vertex], vertex))
            placed.append(pick)
            placed_set.add(pick)
            remaining.remove(pick)
    return JoinOrder(placed)


def _component_order(
    component_orders: list[tuple[tuple[int, ...], tuple[int, ...], JoinGraph]],
) -> list[int]:
    """Concatenate per-component orders, smallest final result first.

    Each entry carries the order twice — in the component subgraph's
    local numbering (to price its final intermediate size) and in the
    full graph's numbering (to emit).  Mirrors ``optimize``'s
    cross-product deferral rule so hybrid results agree with the rest of
    the library on disconnected inputs.
    """
    keyed = []
    for index, (local_order, _, subgraph) in enumerate(component_orders):
        final_size = prefix_cardinalities(JoinOrder(local_order), subgraph)[-1]
        keyed.append((final_size, index))
    keyed.sort()
    flat: list[int] = []
    for _, index in keyed:
        flat.extend(component_orders[index][1])
    return flat


def hybrid_optimum(
    query: Query | JoinGraph,
    model: CostModel | None = None,
    *,
    budget: Budget | None = None,
    max_exact: int = DEFAULT_MAX_EXACT,
    seed: int = 0,
    time_factor: float = 3.0,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    trace: Tracer | str | None = None,
) -> ExactResult:
    """Exact where feasible, contracted-skeleton + polish beyond.

    At or below ``max_exact`` relations this *is* :func:`exact_optimum`.
    Beyond it, the graph is contracted to ``max_exact`` clusters of at
    most ``max_exact`` relations each, the cluster skeleton and each
    cluster interior are solved exactly, the orders are interleaved into
    a full valid order, and a budgeted iterative-improvement descent
    polishes it — ``proven`` is then always False.  Disconnected graphs
    recurse per component.
    """
    graph = query.graph if isinstance(query, Query) else query
    if model is None:
        model = MainMemoryCostModel()
    n = graph.n_relations
    tracer, sink = as_tracer(trace)
    if budget is None:
        budget = Budget.for_query(
            max(1, graph.n_joins), time_factor, units_per_n2
        )
    if sink is not None:
        tracer.bind_clock(budget)
    if n <= max_exact:
        result = exact_optimum(
            graph,
            model,
            budget=budget,
            max_relations=max_exact,
            seed=seed,
            allow_partial=True,
            trace=tracer,
        )
        _flush_trace(tracer, sink)
        return result

    if not graph.is_connected:
        pieces: list[tuple[tuple[int, ...], tuple[int, ...], JoinGraph]] = []
        totals = _SearchStats()
        weight_total = float(
            sum(len(c) * len(c) for c in graph.components)
        )
        for component in graph.components:
            subgraph = graph.subgraph(component)
            weight = len(component) * len(component) / weight_total
            share = Budget(
                limit=max(1.0, budget.remaining * weight)
            ) if math.isfinite(budget.remaining) else Budget.unlimited()
            piece = hybrid_optimum(
                subgraph,
                model,
                budget=share,
                max_exact=max_exact,
                seed=seed,
                trace=tracer,
            )
            budget.spent = min(budget.limit, budget.spent + share.spent)
            totals.nodes_expanded += piece.nodes_expanded
            totals.pruned_bound += piece.nodes_pruned_bound
            totals.pruned_dominated += piece.nodes_pruned_dominated
            totals.incumbent_updates += piece.incumbent_updates
            totals.n_cost_evaluations += piece.n_cost_evaluations
            global_order = tuple(
                component[local] for local in piece.order.positions
            )
            pieces.append((piece.order.positions, global_order, subgraph))
        order = JoinOrder(_component_order(pieces))
        cost = model.plan_cost(order, graph)
        _flush_trace(tracer, sink)
        return ExactResult(
            order=order,
            cost=cost,
            proven=False,
            mode=_MODE_HYBRID,
            n_relations=n,
            nodes_expanded=totals.nodes_expanded,
            nodes_pruned_bound=totals.pruned_bound,
            nodes_pruned_dominated=totals.pruned_dominated,
            incumbent_updates=totals.incumbent_updates,
            n_cost_evaluations=totals.n_cost_evaluations,
            units_spent=budget.spent,
            lower_bound=lower_bound(graph, model),
        )

    if tracer.enabled:
        tracer.phase_start("hybrid_contract")
    clusters = _contract_clusters(graph, max_exact, max_exact)
    contracted = _contracted_graph(graph, clusters)
    if tracer.enabled:
        tracer.phase_end("hybrid_contract")

    totals = _SearchStats()

    def _exact_order(target: JoinGraph, share: Budget) -> tuple[int, ...]:
        try:
            result = exact_optimum(
                target,
                model,
                budget=share,
                max_relations=target.n_relations,
                seed=seed,
                allow_partial=True,
                trace=tracer,
            )
        # boundary: a starved or overflowing sub-solve falls back to the
        # greedy order — hybrid mode promises a valid construction, not
        # a certificate (proven=False either way).
        except (BudgetExhausted, CostOverflowError, OverflowError):
            return _greedy_order(target).positions
        finally:
            budget.spent = min(budget.limit, budget.spent + share.spent)
        totals.nodes_expanded += result.nodes_expanded
        totals.pruned_bound += result.nodes_pruned_bound
        totals.pruned_dominated += result.nodes_pruned_dominated
        totals.incumbent_updates += result.incumbent_updates
        totals.n_cost_evaluations += result.n_cost_evaluations
        return result.order.positions

    def _share(fraction: float) -> Budget:
        if not math.isfinite(budget.remaining):
            return Budget.unlimited()
        return Budget(limit=max(1.0, budget.remaining * fraction))

    skeleton_order = _exact_order(contracted, _share(0.3))
    local_orders: list[tuple[int, ...]] = []
    interior = sum(len(members) for members in clusters if len(members) > 1)
    for members in clusters:
        if len(members) == 1:
            local_orders.append((members[0],))
            continue
        subgraph = graph.subgraph(members)
        if subgraph.n_relations > max_exact or not subgraph.is_connected:
            local = _greedy_order(subgraph).positions
        else:
            local = _exact_order(
                subgraph, _share(0.4 * len(members) / max(1, interior))
            )
        local_orders.append(
            tuple(members[position] for position in local)
        )
    start = _expand_skeleton(graph, clusters, skeleton_order, local_orders)
    invalid = first_invalid_position(start, graph)
    if invalid is not None:
        raise RuntimeError(
            f"hybrid expansion produced an invalid order at position "
            f"{invalid}: {start}"
        )

    evaluator: Evaluator
    if supports_incremental(model):
        evaluator = DeltaEvaluator(graph, model, budget)
    else:
        evaluator = Evaluator(graph, model, budget)
    evaluator.tracer = tracer
    if tracer.enabled:
        tracer.phase_start("hybrid_polish")
    rng = derive_rng(seed, "exact", "hybrid-polish", n)
    try:
        start_cost = evaluator.evaluate(start)
        improvement_run(
            start, evaluator, MoveSet(), rng, start_cost=start_cost
        )
        # Spend whatever budget remains on II restarts (bounded, so an
        # unlimited budget cannot spin forever).
        for _ in range(_MAX_POLISH_RESTARTS):
            if budget.remaining < 2.0 * graph.n_joins:
                break
            improvement_run(
                random_valid_order(graph, rng), evaluator, MoveSet(), rng
            )
    # boundary: polish is strictly opportunistic; the expanded order is
    # already a complete valid answer.
    except (BudgetExhausted, CostOverflowError, OverflowError):
        pass
    if tracer.enabled:
        tracer.phase_end("hybrid_polish")
    best = evaluator.best
    if best is None:
        # Budget died before even the start order was priced.
        best = Evaluation(start, model.plan_cost(start, graph))
    totals.n_cost_evaluations += int(
        getattr(
            evaluator, "n_joins_evaluated",
            evaluator.n_evaluations * graph.n_joins,
        )
    )
    _flush_trace(tracer, sink)
    return ExactResult(
        order=best.order,
        cost=best.cost,
        proven=False,
        mode=_MODE_HYBRID,
        n_relations=n,
        nodes_expanded=totals.nodes_expanded,
        nodes_pruned_bound=totals.pruned_bound,
        nodes_pruned_dominated=totals.pruned_dominated,
        incumbent_updates=totals.incumbent_updates,
        n_cost_evaluations=totals.n_cost_evaluations,
        units_spent=budget.spent,
        lower_bound=lower_bound(graph, model),
    )


# ----------------------------------------------------------------------
# Optimality gaps
# ----------------------------------------------------------------------


def optimality_gap(cost: float, exact_cost: float) -> float:
    """``cost / exact_cost`` — how far a result sits above the optimum.

    Exactly ``>= 1.0`` whenever ``cost`` is the true cost of a valid
    order and ``exact_cost`` the exact optimum under the same model:
    the optimum is the minimum over the same value set, and IEEE-754
    division of ``x >= y > 0`` never rounds below one.
    """
    if exact_cost <= 0.0:
        return 1.0 if cost <= 0.0 else math.inf
    return cost / exact_cost


@dataclass(frozen=True)
class GapRow:
    """One method's cost and optimality gap."""

    method: str
    cost: float
    gap: float
    n_evaluations: int


@dataclass(frozen=True)
class GapReport:
    """A method comparison anchored to the exact optimum.

    ``proven`` is the exact pass's flag: when False (partial budget or
    hybrid mode) the "gaps" are ratios to the best *known* cost, and
    may understate the true distance to optimal (never overstate a
    method: the reference can only be too high).
    """

    query: str
    n_relations: int
    model: str
    exact_cost: float
    exact_order: tuple[int, ...]
    proven: bool
    mode: str
    nodes_expanded: int
    nodes_pruned_bound: int
    nodes_pruned_dominated: int
    incumbent_updates: int
    rows: tuple[GapRow, ...]


def build_gap_report(
    query: Query | JoinGraph,
    model: CostModel,
    results: Mapping[str, Any],
    exact: ExactResult,
) -> GapReport:
    """Anchor a ``compare_methods`` result mapping to an exact result.

    Rows are sorted by (cost, method) — deterministic, and identical for
    any ``workers`` count because both inputs are (the comparison is
    bit-identical across worker counts and the exact pass runs in the
    parent process).
    """
    graph = query.graph if isinstance(query, Query) else query
    name = query.name if isinstance(query, Query) else "adhoc"
    rows = [
        GapRow(
            method=method,
            cost=result.cost,
            gap=optimality_gap(result.cost, exact.cost),
            n_evaluations=result.n_evaluations,
        )
        for method, result in results.items()
    ]
    rows.sort(key=lambda row: (row.cost, row.method))
    return GapReport(
        query=name,
        n_relations=graph.n_relations,
        model=model.name,
        exact_cost=exact.cost,
        exact_order=exact.order.positions,
        proven=exact.proven,
        mode=exact.mode,
        nodes_expanded=exact.nodes_expanded,
        nodes_pruned_bound=exact.nodes_pruned_bound,
        nodes_pruned_dominated=exact.nodes_pruned_dominated,
        incumbent_updates=exact.incumbent_updates,
        rows=tuple(rows),
    )


def gap_report_json(report: GapReport) -> str:
    """Canonical byte-stable JSON rendering of a gap report."""
    payload = {
        "query": report.query,
        "n_relations": report.n_relations,
        "model": report.model,
        "exact": {
            "cost": report.exact_cost,
            "order": list(report.exact_order),
            "proven": report.proven,
            "mode": report.mode,
            "nodes_expanded": report.nodes_expanded,
            "nodes_pruned_bound": report.nodes_pruned_bound,
            "nodes_pruned_dominated": report.nodes_pruned_dominated,
            "incumbent_updates": report.incumbent_updates,
        },
        "methods": [
            {
                "method": row.method,
                "cost": row.cost,
                "gap": row.gap,
                "n_evaluations": row.n_evaluations,
            }
            for row in report.rows
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# The EXACT method (registered in repro.core.combinations)
# ----------------------------------------------------------------------


class ExactStrategy(Strategy):
    """Branch-and-bound as a first-class method behind ``optimize()``.

    Deterministic; spends the evaluator's budget on the search (minus a
    reserve for pricing the answer through the evaluator, which is what
    records it into the best/trajectory bookkeeping every other method
    uses).  Beyond :data:`DEFAULT_MAX_EXACT` relations it transparently
    degrades to :func:`hybrid_optimum`.
    """

    name = "EXACT"
    description = "exact branch-and-bound (hybrid contraction at large N)"
    stochastic = False
    max_exact = DEFAULT_MAX_EXACT

    def run(
        self,
        evaluator: Evaluator,
        rng: random.Random,
        params: MethodParams,
    ) -> None:
        graph = evaluator.graph
        budget = evaluator.budget
        reserve = float(max(1, graph.n_joins))
        sub = Budget(limit=max(1.0, budget.remaining - reserve))
        try:
            if graph.n_relations <= self.max_exact:
                result = exact_optimum(
                    graph,
                    evaluator.model,
                    budget=sub,
                    max_relations=self.max_exact,
                    allow_partial=True,
                    trace=evaluator.tracer,
                )
            else:
                result = hybrid_optimum(
                    graph,
                    evaluator.model,
                    budget=sub,
                    max_exact=self.max_exact,
                    trace=evaluator.tracer,
                )
        finally:
            budget.spent = min(budget.limit, budget.spent + sub.spent)
        evaluator.evaluate(result.order)
