"""Simulated annealing (the paper's Figure 2, JAMS87-style schedule).

The algorithm follows the paper's pseudo-code exactly; the schedule
parameters it leaves to [SG88]/[JAMS87] are implemented as in Johnson,
Aragon, McGeoch & Schevon's experimental study:

* **initial temperature** — chosen so that a target fraction
  (``initial_acceptance``, default 0.4) of uphill moves from the start
  state would be accepted, estimated from a sample of random neighbors;
* **chain length** — ``size_factor * N`` moves per temperature;
* **cooling** — geometric, ``T <- temp_factor * T`` (default 0.95);
* **freezing** — the system is frozen when the best solution has not
  improved for ``frozen_chains`` consecutive chains while the acceptance
  ratio stays below ``min_acceptance``.

The best state *visited* is returned (not the final state), and the run is
budget-bounded like every other method.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable

from repro.core.batching import BatchSizer, speculate_moves
from repro.core.budget import BudgetExhausted
from repro.core.moves import MoveSet, NoValidMove
from repro.core.state import Evaluation, Evaluator
from repro.obs import events as obs_events
from repro.plans.join_order import JoinOrder


@dataclass(frozen=True)
class ChainStats:
    """Diagnostics for one completed temperature chain."""

    chain_index: int
    temperature: float
    acceptance_ratio: float
    current_cost: float
    best_cost: float


@dataclass(frozen=True)
class AnnealingSchedule:
    """Tunable parameters of the annealing schedule.

    JAMS87 recommend ``size_factor = 16`` against a CPU-seconds budget;
    this library's work-unit clock compresses the budget by orders of
    magnitude (see :mod:`repro.core.budget`), so the default chain length
    scales down accordingly — otherwise the system never cools before the
    budget expires and SA degenerates into a random walk.  The defaults
    below let SA freeze within a ``9 N^2`` budget at the default
    calibration while preserving the paper's qualitative ordering
    (II best, SA next, undirected baselines behind).
    """

    size_factor: int = 2
    temp_factor: float = 0.90
    initial_acceptance: float = 0.40
    min_acceptance: float = 0.02
    frozen_chains: int = 4
    temperature_floor: float = 1e-12

    def __post_init__(self) -> None:
        if self.size_factor < 1:
            raise ValueError("size_factor must be >= 1")
        if not 0.0 < self.temp_factor < 1.0:
            raise ValueError("temp_factor must be in (0, 1)")
        if not 0.0 < self.initial_acceptance < 1.0:
            raise ValueError("initial_acceptance must be in (0, 1)")


def initial_temperature(
    start: JoinOrder,
    start_cost: float,
    evaluator: Evaluator,
    move_set: MoveSet,
    rng: random.Random,
    schedule: AnnealingSchedule,
    sample_size: int = 20,
) -> float:
    """Temperature at which ``initial_acceptance`` of uphill moves pass.

    Samples random neighbors of the start state and solves
    ``exp(-delta / T) = initial_acceptance`` for ``T`` at the **median**
    uphill delta.  Join-order cost deltas are heavy-tailed (one bad move
    can cost orders of magnitude more than a typical one); the mean would
    set a temperature so high the system never cools within any
    reasonable budget, while the median targets the typical move the
    acceptance fraction is meant to describe.  When no uphill neighbor is
    found, a temperature proportional to the start cost is used.
    """
    if evaluator.supports_batch:
        uphill = _sample_uphill_batched(
            start, start_cost, evaluator, move_set, rng, sample_size
        )
    else:
        uphill = []
        for _ in range(sample_size):
            try:
                move, neighbor = move_set.random_valid_move(
                    start, evaluator.graph, rng
                )
            except NoValidMove:
                break
            # Candidates share the start's prefix; none is committed, so
            # the anchor stays on the start state for the whole sample.
            delta = (
                evaluator.evaluate_candidate(
                    neighbor, first_changed=move.first_changed
                )
                - start_cost
            )
            if delta > 0:
                uphill.append(delta)
    if uphill:
        uphill.sort()
        median_uphill = uphill[len(uphill) // 2]
        return median_uphill / -math.log(schedule.initial_acceptance)
    return max(start_cost, 1.0)


def _sample_uphill_batched(
    start: JoinOrder,
    start_cost: float,
    evaluator: Evaluator,
    move_set: MoveSet,
    rng: random.Random,
    sample_size: int,
) -> list[float]:
    """Uphill deltas of the temperature sample, priced in one sweep.

    Every sampled neighbor is consumed unconditionally (the scalar sample
    evaluates each one and commits none), so the speculation is never
    discarded and the RNG ends at the scalar stream position without any
    restore.  A :class:`~repro.core.moves.NoValidMove` mid-sample simply
    truncates the sample, as the scalar ``break`` does.
    """
    speculated, _ = speculate_moves(
        start, evaluator.graph, move_set, rng, sample_size
    )
    if not speculated:
        return []
    costs, saturations = evaluator.price_batch(
        [spec.neighbor.positions for spec in speculated]
    )
    uphill: list[float] = []
    for index, spec in enumerate(speculated):
        try:
            cost = evaluator.consume(
                spec.neighbor, costs[index], saturations[index]
            )
        # boundary: restore the RNG snapshot, then re-raise — nothing
        # is swallowed; the walk stops exactly where the scalar one would.
        except BaseException:
            rng.setstate(spec.state_after_move)
            raise
        delta = cost - start_cost
        if delta > 0:
            uphill.append(delta)
    return uphill


def simulated_annealing(
    start: JoinOrder,
    evaluator: Evaluator,
    move_set: MoveSet,
    rng: random.Random,
    schedule: AnnealingSchedule | None = None,
    observer: Callable[[ChainStats], None] | None = None,
    bound_pruning: bool = False,
) -> Evaluation:
    """Anneal from ``start``; return the best state visited.

    Budget exhaustion mid-run simply ends the walk; everything evaluated up
    to that point has been recorded by the evaluator.  ``observer``, when
    given, receives a :class:`ChainStats` after each completed chain —
    used by diagnostics to watch the cooling and acceptance behaviour.

    ``bound_pruning`` reorders the acceptance test so candidates can be
    abandoned mid-costing: the uniform draw happens *before* the
    evaluation, turning Metropolis acceptance ``u < exp(-delta / T)`` into
    the equivalent threshold test ``cost < current - T·ln(u)``, and that
    threshold becomes the evaluator's upper bound.  The decisions are the
    same for the same draw, but classic annealing draws only on uphill
    moves — so the rng stream differs and seeded runs diverge from the
    default mode.  Off by default for exactly that reason.
    """
    if schedule is None:
        schedule = AnnealingSchedule()
    graph = evaluator.graph
    tracer = evaluator.tracer
    chain_length = schedule.size_factor * graph.n_relations
    try:
        current = start
        current_cost = evaluator.evaluate(start)
        best = Evaluation(current, current_cost)
        temperature = initial_temperature(
            start, current_cost, evaluator, move_set, rng, schedule
        )
        chains_without_improvement = 0
        chain_index = 0
        sizer = BatchSizer() if evaluator.supports_batch else None
        while True:
            if sizer is not None:
                current, current_cost, best, accepted, improved, halted = (
                    _chain_batched(
                        current,
                        current_cost,
                        best,
                        evaluator,
                        move_set,
                        rng,
                        chain_length,
                        temperature,
                        bound_pruning,
                        sizer,
                    )
                )
                if improved:
                    chains_without_improvement = -1
                if halted:
                    # NoValidMove mid-chain: stop like the scalar walk,
                    # before any chain stats are emitted.
                    return best
            else:
                accepted = 0
                for _ in range(chain_length):
                    try:
                        move, neighbor = move_set.random_valid_move(
                            current, graph, rng
                        )
                    except NoValidMove:
                        return best
                    if bound_pruning:
                        draw = rng.random()
                        threshold = (
                            current_cost - temperature * math.log(draw)
                            if draw > 0.0
                            else math.inf
                        )
                        neighbor_cost = evaluator.evaluate_candidate(
                            neighbor,
                            upper_bound=threshold,
                            first_changed=move.first_changed,
                        )
                        accept = neighbor_cost is not None and (
                            neighbor_cost <= current_cost
                            or neighbor_cost < threshold
                        )
                    else:
                        neighbor_cost = evaluator.evaluate_candidate(
                            neighbor, first_changed=move.first_changed
                        )
                        delta = neighbor_cost - current_cost
                        accept = delta <= 0 or rng.random() < math.exp(
                            -delta / temperature
                        )
                    if accept:
                        evaluator.commit_candidate(neighbor)
                        prev_cost = current_cost
                        current, current_cost = neighbor, neighbor_cost
                        accepted += 1
                        if current_cost < best.cost:
                            best = Evaluation(current, current_cost)
                            chains_without_improvement = -1
                    if tracer.enabled:
                        if accept:
                            tracer.metrics.inc("moves_accepted")
                            tracer.emit(
                                obs_events.MOVE,
                                outcome=obs_events.ACCEPTED,
                                cost=current_cost,
                                delta=current_cost - prev_cost,
                            )
                        else:
                            if neighbor_cost is None:
                                outcome = obs_events.PRUNED
                                tracer.metrics.inc("moves_pruned")
                            else:
                                outcome = obs_events.REJECTED
                                tracer.metrics.inc("moves_rejected")
                            tracer.emit(obs_events.MOVE, outcome=outcome)
            chains_without_improvement += 1
            acceptance_ratio = accepted / chain_length
            if tracer.enabled:
                tracer.emit(
                    obs_events.CHAIN,
                    index=chain_index,
                    temperature=temperature,
                    acceptance=acceptance_ratio,
                    best_cost=best.cost,
                )
                tracer.metrics.inc("sa_chains")
                tracer.metrics.observe("sa_acceptance_ratio", acceptance_ratio)
            if observer is not None:
                observer(
                    ChainStats(
                        chain_index=chain_index,
                        temperature=temperature,
                        acceptance_ratio=acceptance_ratio,
                        current_cost=current_cost,
                        best_cost=best.cost,
                    )
                )
            chain_index += 1
            frozen = (
                chains_without_improvement >= schedule.frozen_chains
                and acceptance_ratio < schedule.min_acceptance
            )
            if frozen or temperature < schedule.temperature_floor:
                return best
            temperature *= schedule.temp_factor
    except BudgetExhausted:
        if evaluator.best is None:
            raise
        return evaluator.best


def _chain_batched(
    current: JoinOrder,
    current_cost: float,
    best: Evaluation,
    evaluator: Evaluator,
    move_set: MoveSet,
    rng: random.Random,
    chain_length: int,
    temperature: float,
    bound_pruning: bool,
    sizer: BatchSizer,
) -> tuple[JoinOrder, float, Evaluation, int, bool, bool]:
    """One temperature chain with kernel-priced move batches.

    Speculates ``(move, u)`` pairs under the all-rejected assumption: a
    *rejected* move is always an uphill move, which consumes both draws in
    the scalar stream, so rejected speculations line up exactly.  On
    acceptance the RNG is restored to the snapshot the scalar walk would
    be at — after the move draw for a downhill accept (classic mode never
    drew ``u`` there), after the uniform otherwise — and the rest of the
    batch is discarded.  In ``bound_pruning`` mode the scalar walk draws
    ``u`` before pricing unconditionally, so every path runs through
    ``state_after_u``.

    Returns ``(current, current_cost, best, accepted, improved, halted)``;
    ``halted`` reports a :class:`~repro.core.moves.NoValidMove` reached
    with every prior speculation rejected — the caller returns ``best``
    exactly as the scalar chain does.
    """
    graph = evaluator.graph
    tracer = evaluator.tracer
    accepted = 0
    improved = False
    moves_done = 0
    while moves_done < chain_length:
        limit = min(sizer.size, chain_length - moves_done)
        speculated, exhausted = speculate_moves(
            current, graph, move_set, rng, limit, draw_uniform=True
        )
        if speculated:
            costs, saturations = evaluator.price_batch(
                [spec.neighbor.positions for spec in speculated]
            )
        took = False
        for consumed, spec in enumerate(speculated, start=1):
            index = consumed - 1
            if bound_pruning:
                draw = spec.u
                threshold = (
                    current_cost - temperature * math.log(draw)
                    if draw > 0.0
                    else math.inf
                )
                try:
                    neighbor_cost = evaluator.consume(
                        spec.neighbor,
                        costs[index],
                        saturations[index],
                        upper_bound=threshold,
                    )
                # boundary: restore the RNG snapshot, then re-raise —
                # nothing is swallowed.
                except BaseException:
                    rng.setstate(spec.state_after_u)
                    raise
                accept = neighbor_cost is not None and (
                    neighbor_cost <= current_cost
                    or neighbor_cost < threshold
                )
                restore = spec.state_after_u
            else:
                try:
                    neighbor_cost = evaluator.consume(
                        spec.neighbor, costs[index], saturations[index]
                    )
                # boundary: restore the RNG snapshot, then re-raise —
                # nothing is swallowed.
                except BaseException:
                    rng.setstate(spec.state_after_move)
                    raise
                delta = neighbor_cost - current_cost
                if delta <= 0:
                    accept = True
                    restore = spec.state_after_move
                else:
                    accept = spec.u < math.exp(-delta / temperature)
                    restore = spec.state_after_u
            moves_done += 1
            if accept:
                evaluator.commit_candidate(spec.neighbor)
                prev_cost = current_cost
                current, current_cost = spec.neighbor, neighbor_cost
                accepted += 1
                if current_cost < best.cost:
                    best = Evaluation(current, current_cost)
                    improved = True
            if tracer.enabled:
                if accept:
                    tracer.metrics.inc("moves_accepted")
                    tracer.emit(
                        obs_events.MOVE,
                        outcome=obs_events.ACCEPTED,
                        cost=current_cost,
                        delta=current_cost - prev_cost,
                    )
                else:
                    if neighbor_cost is None:
                        outcome = obs_events.PRUNED
                        tracer.metrics.inc("moves_pruned")
                    else:
                        outcome = obs_events.REJECTED
                        tracer.metrics.inc("moves_rejected")
                    tracer.emit(obs_events.MOVE, outcome=outcome)
            if accept:
                rng.setstate(restore)
                sizer.shrink(consumed)
                took = True
                break
        if took:
            continue
        if exhausted:
            # Every speculation this batch was rejected, so the failing
            # draw really is the walk's next draw.
            return current, current_cost, best, accepted, improved, True
        sizer.grow()
    return current, current_cost, best, accepted, improved, False
