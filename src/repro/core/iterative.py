"""Iterative improvement (the paper's Figure 1).

A single run is the greedy walk: from a start state, repeatedly sample a
random adjacent state and move to it when it is cheaper, until a local
minimum is reached.  Checking *all* neighbors to certify a local minimum
costs ``O(N^2)`` evaluations, so — as in the paper's lineage — the local
minimum condition is approximated: a state is declared locally minimal
after ``patience`` consecutive sampled neighbors fail to improve it.

The multi-start driver lives in :mod:`repro.core.combinations`; this module
provides the single run that every combination builds on.
"""

from __future__ import annotations

import random

from repro.core.batching import BatchSizer, speculate_moves
from repro.core.budget import BudgetExhausted
from repro.core.moves import MoveSet, NoValidMove
from repro.core.state import Evaluation, Evaluator
from repro.obs import events as obs_events
from repro.plans.join_order import JoinOrder


def default_patience(n_relations: int) -> int:
    """Failed-neighbor streak that declares a local minimum.

    Scales with the neighborhood size; floors at 16 so tiny queries still
    sample a meaningful share of their neighborhoods.
    """
    return max(16, 2 * n_relations)


def improvement_run(
    start: JoinOrder,
    evaluator: Evaluator,
    move_set: MoveSet,
    rng: random.Random,
    patience: int | None = None,
    start_cost: float | None = None,
) -> Evaluation | None:
    """One run of iterative improvement from ``start``.

    Returns the local minimum reached (or the best state so far when the
    budget expires mid-run — :class:`BudgetExhausted` propagates to the
    caller *after* the evaluator has recorded everything evaluated).

    When the evaluator carries a ``record_floor`` (the parallel
    orchestrator's globally shared bound), the start state is priced with
    that floor as its upper bound; a start whose walk aborts — it provably
    costs more than both the floor and the local best — is *skipped* and
    the run returns ``None``, so the budget flows to the next start
    instead of a descent that begins above a plan already in hand.  The
    bound an in-progress descent uses is unchanged: the incumbent's cost
    is always the tightest sound bound for an acceptance-driven walk.

    Batch-capable evaluators descend through :func:`_descend_batched`
    (speculated neighbor runs priced per kernel sweep); the candidate
    stream and RNG draws are identical either way.
    """
    if patience is None:
        patience = default_patience(evaluator.graph.n_relations)
    current = start
    if start_cost is None:
        if evaluator.record_floor is not None:
            bounded = evaluator.evaluate_candidate(
                start, upper_bound=evaluator.record_floor
            )
            if bounded is None:
                return None
            evaluator.commit_candidate(start)
            current_cost = bounded
        else:
            current_cost = evaluator.evaluate(start)
    else:
        current_cost = start_cost
        evaluator.prime(start)
    if evaluator.supports_batch:
        return _descend_batched(
            current, current_cost, evaluator, move_set, rng, patience
        )
    return _descend(current, current_cost, evaluator, move_set, rng, patience)


def _descend(
    current: JoinOrder,
    current_cost: float,
    evaluator: Evaluator,
    move_set: MoveSet,
    rng: random.Random,
    patience: int,
) -> Evaluation:
    """The scalar greedy descent (one candidate priced per draw)."""
    tracer = evaluator.tracer
    depth = 0  # accepted moves this descent (improvement_depth histogram)
    failures = 0
    while failures < patience:
        try:
            move, neighbor = move_set.random_valid_move(
                current, evaluator.graph, rng
            )
        except NoValidMove:
            break
        # The incumbent's cost is the bound: any candidate whose running
        # total exceeds it would be rejected anyway, so its suffix walk
        # can stop early (``None`` means exactly that).
        neighbor_cost = evaluator.evaluate_candidate(
            neighbor,
            upper_bound=current_cost,
            first_changed=move.first_changed,
        )
        if neighbor_cost is not None and neighbor_cost < current_cost:
            evaluator.commit_candidate(neighbor)
            prev_cost = current_cost
            current, current_cost = neighbor, neighbor_cost
            failures = 0
            depth += 1
            if tracer.enabled:
                tracer.emit(
                    obs_events.MOVE,
                    outcome=obs_events.ACCEPTED,
                    cost=neighbor_cost,
                    delta=neighbor_cost - prev_cost,
                )
                tracer.metrics.inc("moves_accepted")
        else:
            failures += 1
            if tracer.enabled:
                outcome = (
                    obs_events.PRUNED
                    if neighbor_cost is None
                    else obs_events.REJECTED
                )
                tracer.emit(obs_events.MOVE, outcome=outcome)
                tracer.metrics.inc(
                    "moves_pruned"
                    if neighbor_cost is None
                    else "moves_rejected"
                )
    if tracer.enabled:
        tracer.metrics.observe("improvement_depth", float(depth))
    return Evaluation(current, current_cost)


def _descend_batched(
    current: JoinOrder,
    current_cost: float,
    evaluator: Evaluator,
    move_set: MoveSet,
    rng: random.Random,
    patience: int,
) -> Evaluation:
    """The batched greedy descent — same walk, kernel-priced neighbors.

    Neighbors are speculated under the all-rejected assumption (II rejects
    most samples near a local minimum), priced in one kernel sweep, and
    consumed in draw order.  Accepting a move restores the RNG snapshot
    taken right after that move's draw and discards the rest of the batch,
    so the observable RNG stream — and with it the whole trajectory — is
    bit-identical to :func:`_descend`.  The batch never outruns
    ``patience``: its size is capped so the failure streak can complete
    exactly at a batch boundary, where the scalar loop would stop too.
    """
    tracer = evaluator.tracer
    graph = evaluator.graph
    depth = 0
    failures = 0
    sizer = BatchSizer()
    while failures < patience:
        limit = min(sizer.size, patience - failures)
        speculated, exhausted = speculate_moves(
            current, graph, move_set, rng, limit
        )
        batch = evaluator.price_batch(
            [spec.neighbor.positions for spec in speculated]
        ) if speculated else ([], [])
        costs, saturations = batch
        accepted = False
        for consumed, spec in enumerate(speculated, start=1):
            try:
                neighbor_cost = evaluator.consume(
                    spec.neighbor,
                    costs[consumed - 1],
                    saturations[consumed - 1],
                    upper_bound=current_cost,
                )
            # boundary: restore the RNG snapshot, then re-raise — nothing
            # is swallowed; budget/target/overflow stops propagate from
            # the same candidate as in the scalar walk.
            except BaseException:
                rng.setstate(spec.state_after_move)
                raise
            if neighbor_cost is not None and neighbor_cost < current_cost:
                evaluator.commit_candidate(spec.neighbor)
                prev_cost = current_cost
                current, current_cost = spec.neighbor, neighbor_cost
                failures = 0
                depth += 1
                if tracer.enabled:
                    tracer.emit(
                        obs_events.MOVE,
                        outcome=obs_events.ACCEPTED,
                        cost=neighbor_cost,
                        delta=neighbor_cost - prev_cost,
                    )
                    tracer.metrics.inc("moves_accepted")
                rng.setstate(spec.state_after_move)
                sizer.shrink(consumed)
                accepted = True
                break
            failures += 1
            if tracer.enabled:
                outcome = (
                    obs_events.PRUNED
                    if neighbor_cost is None
                    else obs_events.REJECTED
                )
                tracer.emit(obs_events.MOVE, outcome=outcome)
                tracer.metrics.inc(
                    "moves_pruned"
                    if neighbor_cost is None
                    else "moves_rejected"
                )
        if accepted:
            continue
        if exhausted:
            # The failing draw consumed the RNG exactly as the scalar
            # walk's NoValidMove would — and with every prior speculation
            # rejected, the walk really is at that draw.
            break
        sizer.grow()
    if tracer.enabled:
        tracer.metrics.observe("improvement_depth", float(depth))
    return Evaluation(current, current_cost)


def multi_start_improvement(
    starts,
    evaluator: Evaluator,
    move_set: MoveSet,
    rng: random.Random,
    patience: int | None = None,
) -> Evaluation | None:
    """Run iterative improvement from each start until the budget expires.

    ``starts`` is an iterable (possibly infinite) of
    :class:`~repro.plans.join_order.JoinOrder` start states.  Returns the
    best local minimum found, or ``None`` when the budget expired before
    the first evaluation (the evaluator's ``best`` is authoritative either
    way).
    """
    best: Evaluation | None = None
    tracer = evaluator.tracer
    try:
        for index, start in enumerate(starts):
            if tracer.enabled:
                tracer.emit(obs_events.RESTART, index=index)
                tracer.metrics.inc("restarts")
            local = improvement_run(
                start, evaluator, move_set, rng, patience=patience
            )
            if local is not None and (best is None or local.cost < best.cost):
                best = local
    except BudgetExhausted:
        pass
    if evaluator.best is not None:
        if best is None or evaluator.best.cost < best.cost:
            best = evaluator.best
    return best
