"""The optimization clock: a deterministic substitute for CPU seconds.

The paper gives every method the same CPU-time limit, proportional to
``N^2`` (at ``9 N^2`` the limit for ``N = 50`` is 7.5 minutes on a 4-MIPS
workstation).  Wall-clock limits are machine-dependent and make experiments
irreproducible, so this library counts *work units* instead:

* **1 unit = 1 join-cost evaluation.**  Evaluating a full plan of ``N``
  joins therefore costs ``N`` units — the clock advances proportionally to
  the real work every method performs, which is dominated by cost
  evaluations exactly as in the paper's CPU-bound runs.
* Cheaper bookkeeping operations (scoring one candidate in the
  augmentation heuristic, one merge step in KBZ's algorithm R) are charged
  at :data:`CRITERION_CHARGE` / :data:`RANK_OP_CHARGE` units, preserving
  the paper's observation that KBZ pays much more per generated state than
  augmentation does.

A time limit of ``k * N^2`` paper-seconds maps to ``k * N^2 *
units_per_n2`` units.  The default calibration ``units_per_n2 = 30`` lets
iterative improvement complete a few dozen runs at the ``9 N^2`` limit for
``N = 50``, matching the scale of the paper's runs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.utils.validation import check_positive

#: Budget units charged per candidate scored by the augmentation heuristic.
#: Scoring a candidate is one multiply/compare over precomputed statistics —
#: an order of magnitude cheaper than evaluating a join's cost.
CRITERION_CHARGE = 0.1

#: Budget units charged per merge/normalization step in KBZ's algorithm R
#: and per edge scored by algorithm G's spanning-tree growth.  These steps
#: compute ranks, combine ASI modules, and maintain ordered chains — work
#: comparable to a join-cost evaluation.  The paper stresses that KBZ "is a
#: complex heuristic that takes much longer to generate a single state than
#: the augmentation heuristic", which this charge preserves.
RANK_OP_CHARGE = 1.0

#: Default calibration: join-cost evaluations per ``N^2`` of paper time.
DEFAULT_UNITS_PER_N2 = 30.0


class BudgetExhausted(Exception):
    """Raised when an operation would exceed the optimization budget."""


@dataclass
class Budget:
    """A consumable allowance of work units.

    ``charge`` is called *before* performing the work it pays for; once the
    limit is reached it raises :class:`BudgetExhausted`, which optimizers
    catch at their loop boundaries to stop gracefully (they are anytime
    algorithms and return the best solution found so far).
    """

    limit: float
    spent: float = field(default=0.0)

    def __post_init__(self) -> None:
        check_positive("limit", self.limit)

    @classmethod
    def for_query(
        cls,
        n_joins: int,
        time_factor: float,
        units_per_n2: float = DEFAULT_UNITS_PER_N2,
    ) -> "Budget":
        """The paper's ``time_factor * N^2`` limit, in work units."""
        check_positive("n_joins", n_joins)
        check_positive("time_factor", time_factor)
        check_positive("units_per_n2", units_per_n2)
        return cls(limit=time_factor * n_joins * n_joins * units_per_n2)

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never exhausts (tests, pure-heuristic calls)."""
        return cls(limit=math.inf)

    @property
    def remaining(self) -> float:
        return max(0.0, self.limit - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit

    def charge(self, units: float) -> None:
        """Consume ``units``; raise :class:`BudgetExhausted` at the limit."""
        if self.spent + units > self.limit:
            self.spent = self.limit
            raise BudgetExhausted(
                f"budget of {self.limit:.0f} units exhausted"
            )
        self.spent += units

    def can_afford(self, units: float) -> bool:
        """True when ``units`` more work fits within the limit."""
        return self.spent + units <= self.limit

    def carve(self, fraction: float) -> "Budget":
        """A fresh budget of ``fraction`` of this budget's *original* limit.

        Used by the resilient fallback chain to grant each recovery stage a
        bounded, unspent allowance regardless of how much the failed attempt
        consumed (a crashed attempt may have drained everything).  The carve
        is intentionally not deducted from this budget: recovery overhead is
        bounded extra work, priced at ``fraction`` per stage.
        """
        check_positive("fraction", fraction)
        return Budget(limit=max(1.0, self.limit * fraction))


class WallClockBudget(Budget):
    """A budget bounded by elapsed wall-clock time instead of work units.

    For production-style use ("give the optimizer two seconds"), at the
    price of reproducibility — two runs with the same seed may stop at
    different points.  Work units are still counted in ``spent`` for
    reporting; exhaustion is purely time-based.  The clock is injectable
    for tests.
    """

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        super().__init__(limit=math.inf)
        self.seconds = check_positive("seconds", seconds)
        self._clock = clock
        self._start = clock()

    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    @property
    def exhausted(self) -> bool:
        return self.elapsed >= self.seconds

    @property
    def remaining(self) -> float:
        """Remaining *seconds* (unlike Budget, whose unit is work)."""
        return max(0.0, self.seconds - self.elapsed)

    def charge(self, units: float) -> None:
        if self.exhausted:
            raise BudgetExhausted(
                f"wall-clock budget of {self.seconds:g}s exhausted"
            )
        self.spent += units

    def can_afford(self, units: float) -> bool:
        return not self.exhausted

    def carve(self, fraction: float) -> "WallClockBudget":
        """A fresh wall-clock allowance sharing this budget's clock."""
        check_positive("fraction", fraction)
        return WallClockBudget(self.seconds * fraction, clock=self._clock)
