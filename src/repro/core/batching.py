"""Candidate speculation for batched costing.

The batched search loops face a chicken-and-egg problem: the vectorized
kernel wants a whole batch of candidate orders up front, but the scalar
walks draw each candidate from the RNG *after* deciding the previous one's
fate — an accepted move changes the current order, and every draw after it
would have come from the new state.

The resolution is *speculation with state snapshots*: draw a run of moves
from the shared RNG assuming every one of them gets rejected (the common
case — II rejects most neighbors, SA rejects most uphill moves), recording
``rng.getstate()`` after each draw.  The batch kernel prices the whole run
at once; the consumer then replays the run in order, and the moment a move
is *accepted* it restores the RNG to the snapshot taken right after that
move's draws and throws the rest of the batch away.  The RNG stream the
walk observes is therefore exactly the scalar stream — bit-identical
trajectories — while rejected runs (the bulk of the work) are priced at
array speed.

``draw_uniform`` covers simulated annealing's acceptance test: the scalar
chain draws its uniform *only* for uphill moves, but whether a move is
uphill is unknown until it is priced.  Speculating the pair ``(move, u)``
works because a *rejected* move is always an uphill move — so a rejection
consumed both draws, matching the speculated stream; on acceptance the
consumer restores ``state_after_move`` (downhill: ``u`` was never drawn)
or ``state_after_u`` (uphill: it was).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.catalog.join_graph import JoinGraph
from repro.core.moves import Move, MoveSet, NoValidMove
from repro.plans.join_order import JoinOrder


@dataclass(frozen=True)
class SpeculatedMove:
    """One speculated draw: the move, its neighbor, and RNG snapshots.

    ``state_after_move`` is the RNG state right after the move's own draws
    (including validity-rejected retries); ``state_after_u`` additionally
    covers the speculative uniform when one was drawn, and equals
    ``state_after_move`` otherwise.
    """

    move: Move
    neighbor: JoinOrder
    state_after_move: Any
    u: float | None
    state_after_u: Any


def speculate_moves(
    current: JoinOrder,
    graph: JoinGraph,
    move_set: MoveSet,
    rng: random.Random,
    limit: int,
    draw_uniform: bool = False,
) -> tuple[list[SpeculatedMove], bool]:
    """Draw up to ``limit`` moves from ``current`` assuming all-rejected.

    Returns ``(speculated, exhausted)``.  ``exhausted`` is True when a
    draw raised :class:`NoValidMove`; the failed draw consumed the RNG
    exactly as the scalar walk's failing draw would, so a consumer that
    rejects every prior speculation may handle the exhaustion in place.
    A consumer that *accepts* an earlier move must discard the flag along
    with the rest of the batch (the scalar walk would have drawn from the
    accepted neighbor instead).

    The RNG is left positioned after the last draw — the all-rejected
    stream position; accepting consumers restore the relevant snapshot.
    """
    speculated: list[SpeculatedMove] = []
    for _ in range(limit):
        try:
            move, neighbor = move_set.random_valid_move(current, graph, rng)
        except NoValidMove:
            return speculated, True
        state_after_move = rng.getstate()
        if draw_uniform:
            u: float | None = rng.random()
            state_after_u = rng.getstate()
        else:
            u = None
            state_after_u = state_after_move
        speculated.append(
            SpeculatedMove(move, neighbor, state_after_move, u, state_after_u)
        )
    return speculated, False


class BatchSizer:
    """Deterministic adaptive batch size for speculation runs.

    Speculation pays off in proportion to the rejection streak: a batch is
    fully used only when every move in it is rejected, and everything
    after an accepted move is thrown away.  The sizer doubles the batch
    after a fully-consumed (all-rejected) run and shrinks it toward twice
    the observed streak length after an acceptance, so hill-descending
    phases (long streaks) get big batches and fluid phases (quick accepts)
    waste little speculation.

    Purely a performance knob: batch size never changes which candidates
    are generated, only how many are priced per kernel sweep.
    """

    def __init__(
        self, initial: int = 8, minimum: int = 4, maximum: int = 128
    ) -> None:
        if not 1 <= minimum <= initial <= maximum:
            raise ValueError(
                f"need 1 <= minimum <= initial <= maximum, got "
                f"{minimum}/{initial}/{maximum}"
            )
        self.minimum = minimum
        self.maximum = maximum
        self.size = initial

    def grow(self) -> None:
        """The whole batch was consumed without an acceptance."""
        self.size = min(self.maximum, self.size * 2)

    def shrink(self, consumed: int) -> None:
        """A move was accepted after ``consumed`` rejected speculations."""
        self.size = max(self.minimum, min(self.maximum, 2 * max(1, consumed)))
