"""Execute a join order over generated data and measure what the
optimizer only estimated.

The executor interprets a join order exactly as the cost models price it:
left to right, each relation hash-joined into the running intermediate on
every predicate linking it to the relations already joined (cross product
when none).  It returns the final table plus the measured size of every
intermediate, for comparison against
:func:`repro.cost.cardinality.prefix_cardinalities`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph
from repro.cost.cardinality import prefix_cardinalities
from repro.engine.datagen import join_column_name
from repro.engine.operators import hash_join
from repro.engine.table import Table
from repro.plans.join_order import JoinOrder


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one join order on concrete tables."""

    order: JoinOrder
    final: Table
    intermediate_sizes: tuple[int, ...]
    estimated_sizes: tuple[float, ...]
    #: Measured row count of each base table, in *order* sequence: entry
    #: ``k`` is the size of ``tables[order[k]]`` as scanned.  The
    #: measurement-feedback loop recalibrates base cardinalities from
    #: these.
    base_sizes: tuple[int, ...] = ()

    @property
    def n_rows(self) -> int:
        return self.final.n_rows

    @property
    def operator_cardinalities(self) -> tuple[int, ...]:
        """Measured output rows of every operator in the pipeline.

        Entry 0 is the scan of ``order[0]``; entry ``k >= 1`` is the
        output of the ``k``-th hash join — the measured counterpart of
        :func:`repro.cost.cardinality.prefix_cardinalities` on the same
        order.  This is what the feedback loop compares against the
        optimizer's estimates.
        """
        first = self.base_sizes[0] if self.base_sizes else self.final.n_rows
        return (first, *self.intermediate_sizes)

    def size_ratios(self) -> list[float]:
        """Measured / estimated size per join (1.0 = perfect estimate).

        Joins whose measured size is zero are reported as 0.0.
        """
        ratios = []
        for measured, estimated in zip(
            self.intermediate_sizes, self.estimated_sizes[1:]
        ):
            ratios.append(measured / estimated if estimated > 0 else 0.0)
        return ratios


def execute_bushy(tree, graph: JoinGraph, tables: dict[int, Table]) -> Table:
    """Execute a bushy join tree (see :mod:`repro.plans.bushy`).

    Each internal node hash-joins its children on every predicate
    crossing the partition (cross product when none); the left child is
    the probing (outer) side, matching :func:`repro.plans.bushy.bushy_cost`.
    """
    predicate_index = {p: i for i, p in enumerate(graph.predicates)}

    def run(node) -> Table:
        if node.is_leaf:
            return tables[node.relation]
        left_table = run(node.left)
        right_table = run(node.right)
        left_set = node.left.relations
        join_columns = []
        for vertex in node.right.relations:
            for neighbor, predicate in graph.adjacency(vertex).items():
                if neighbor in left_set:
                    p_index = predicate_index[predicate]
                    join_columns.append(
                        (
                            join_column_name(neighbor, p_index),
                            join_column_name(vertex, p_index),
                        )
                    )
        return hash_join(left_table, right_table, join_columns)

    return run(tree)


def execute_order(
    order: JoinOrder,
    graph: JoinGraph,
    tables: dict[int, Table],
) -> ExecutionResult:
    """Run the outer-linear plan ``order`` over ``tables``."""
    if len(order) != graph.n_relations:
        raise ValueError("order does not match graph")
    current = tables[order[0]]
    placed = [order[0]]
    sizes: list[int] = []
    predicate_index = {p: i for i, p in enumerate(graph.predicates)}
    for position in range(1, len(order)):
        inner = order[position]
        join_columns = []
        for predicate in graph.edges_between(placed, inner):
            p_index = predicate_index[predicate]
            outer_side = predicate.other(inner)
            join_columns.append(
                (
                    join_column_name(outer_side, p_index),
                    join_column_name(inner, p_index),
                )
            )
        current = hash_join(current, tables[inner], join_columns)
        sizes.append(current.n_rows)
        placed.append(inner)
    return ExecutionResult(
        order=order,
        final=current,
        intermediate_sizes=tuple(sizes),
        estimated_sizes=tuple(prefix_cardinalities(order, graph)),
        base_sizes=tuple(tables[vertex].n_rows for vertex in order),
    )
