"""Generate concrete data matching a query's catalog statistics.

For each relation, a table with its *effective* cardinality (``N_k``,
selections already applied — matching what the optimizer reasons about).
For each join predicate, both sides get a join column whose values are
drawn uniformly from their declared distinct-value domains ``[0, D)``.
Under uniformity, a random pair of tuples matches with probability
``min(D_l, D_r) / (D_l * D_r) = 1 / max(D_l, D_r)`` — exactly the
catalog's join selectivity — so measured intermediate sizes track the
estimator in expectation.

Column naming: relation ``k``'s column for predicate index ``p`` is
``"r{k}_e{p}"``, so all names are globally unique and the executor can
find the join columns of any predicate on either side.
"""

from __future__ import annotations

import random

from repro.catalog.join_graph import JoinGraph
from repro.engine.table import Column, Table
from repro.utils.rng import derive_rng


def join_column_name(relation: int, predicate_index: int) -> str:
    """Canonical column name for one side of one join predicate."""
    return f"r{relation}_e{predicate_index}"


def generate_database(
    graph: JoinGraph,
    seed: int = 0,
    max_rows: int | None = None,
) -> dict[int, Table]:
    """One table per relation, statistics matching the catalog.

    ``max_rows`` optionally caps table sizes (scaling distinct-value
    domains proportionally) so examples stay fast on large catalogs.
    """
    tables: dict[int, Table] = {}
    for index in range(graph.n_relations):
        relation = graph.relation(index)
        rows = max(1, int(round(relation.cardinality)))
        scale = 1.0
        if max_rows is not None and rows > max_rows:
            scale = max_rows / rows
            rows = max_rows
        rng: random.Random = derive_rng(seed, "datagen", relation.name, index)
        columns = [
            Column("rowid_" + relation.name, tuple(range(rows)))
        ]
        for predicate_index, predicate in enumerate(graph.predicates):
            if index not in predicate.endpoints:
                continue
            distinct = max(1, int(round(predicate.distinct_values(index) * scale)))
            columns.append(
                Column(
                    join_column_name(index, predicate_index),
                    tuple(rng.randrange(distinct) for _ in range(rows)),
                )
            )
        tables[index] = Table(relation.name, columns)
    return tables
