"""Columnar in-memory tables.

A :class:`Table` is a set of named columns of equal length.  Columns hold
Python ints (join keys) — enough for hash joins over synthetic data, with
no external dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Column:
    """A named column of values."""

    name: str
    values: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.values)


class Table:
    """An immutable columnar table."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if columns:
            lengths = {len(column) for column in columns}
            if len(lengths) > 1:
                raise ValueError(
                    f"columns of table {name!r} have differing lengths: {lengths}"
                )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}: {names}")
        self.name = name
        self._columns = {column.name: column for column in columns}
        self._n_rows = len(columns[0]) if columns else 0

    @classmethod
    def from_dict(cls, name: str, data: dict[str, Iterable[int]]) -> "Table":
        return cls(
            name,
            [Column(column, tuple(values)) for column, values in data.items()],
        )

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def row(self, index: int) -> dict[str, int]:
        """One row as a dict (debugging/tests; not a hot path)."""
        return {
            name: column.values[index] for name, column in self._columns.items()
        }

    def take(self, row_indices: Sequence[int], name: str | None = None) -> "Table":
        """A new table with the given rows, in order."""
        columns = [
            Column(
                column.name,
                tuple(column.values[i] for i in row_indices),
            )
            for column in self._columns.values()
        ]
        return Table(name or self.name, columns)

    def __str__(self) -> str:
        return f"Table({self.name}, {self.n_rows} rows, {self.column_names})"
