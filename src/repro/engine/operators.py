"""Physical operators: selection, projection, and the three join methods.

The hash join is the classic build/probe: build a hash table on the inner
table's join column(s), probe with the outer.  Multi-column joins (a
relation linked to the outer side through several predicates, as happens
in cyclic join graphs) key the hash table on the tuple of join values.

The nested-loop and sort-merge joins implement the same equi-join
semantics (matching :mod:`repro.cost.methods`' cost models); all three
produce identical result *sets* — only row order may differ.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Sequence

from repro.engine.table import Column, Table


def select(table: Table, column: str, predicate: Callable[[int], bool]) -> Table:
    """Rows of ``table`` whose ``column`` value satisfies ``predicate``."""
    values = table.column(column).values
    keep = [i for i, value in enumerate(values) if predicate(value)]
    return table.take(keep)


def project(table: Table, columns: Sequence[str], name: str | None = None) -> Table:
    """Only the named columns of ``table``."""
    return Table(
        name or table.name, [table.column(column) for column in columns]
    )


def hash_join(
    outer: Table,
    inner: Table,
    join_columns: Sequence[tuple[str, str]],
    name: str | None = None,
) -> Table:
    """Hash join ``outer`` with ``inner`` on ``(outer_col, inner_col)`` pairs.

    An empty ``join_columns`` is a cross product.  Output columns are the
    union of both sides' columns; the inner side must not share column
    names with the outer (the data generator namespaces columns by
    relation, so this holds by construction).
    """
    _check_disjoint_columns(outer, inner)

    outer_rows: list[int] = []
    inner_rows: list[int] = []
    if join_columns:
        inner_keys = [inner.column(ic).values for _, ic in join_columns]
        table: dict[tuple[int, ...], list[int]] = defaultdict(list)
        for row in range(inner.n_rows):
            table[tuple(keys[row] for keys in inner_keys)].append(row)
        outer_keys = [outer.column(oc).values for oc, _ in join_columns]
        for row in range(outer.n_rows):
            key = tuple(keys[row] for keys in outer_keys)
            for match in table.get(key, ()):
                outer_rows.append(row)
                inner_rows.append(match)
    else:
        for outer_row in range(outer.n_rows):
            for inner_row in range(inner.n_rows):
                outer_rows.append(outer_row)
                inner_rows.append(inner_row)

    return _materialize(outer, inner, outer_rows, inner_rows, name)


def _materialize(
    outer: Table,
    inner: Table,
    outer_rows: list[int],
    inner_rows: list[int],
    name: str | None,
) -> Table:
    """Build the joined table from matched row-index pairs."""
    columns = [
        Column(c.name, tuple(c.values[i] for i in outer_rows))
        for c in (outer.column(n) for n in outer.column_names)
    ]
    columns.extend(
        Column(c.name, tuple(c.values[i] for i in inner_rows))
        for c in (inner.column(n) for n in inner.column_names)
    )
    return Table(name or f"({outer.name}*{inner.name})", columns)


def _check_disjoint_columns(outer: Table, inner: Table) -> None:
    overlap = set(outer.column_names) & set(inner.column_names)
    if overlap:
        raise ValueError(f"join sides share column names: {sorted(overlap)}")


def nested_loop_join(
    outer: Table,
    inner: Table,
    join_columns: Sequence[tuple[str, str]],
    name: str | None = None,
) -> Table:
    """Tuple-at-a-time nested-loops equi-join (cross product when no
    join columns are given).  Semantics identical to :func:`hash_join`."""
    _check_disjoint_columns(outer, inner)
    outer_keys = [outer.column(oc).values for oc, _ in join_columns]
    inner_keys = [inner.column(ic).values for _, ic in join_columns]
    outer_rows: list[int] = []
    inner_rows: list[int] = []
    for outer_row in range(outer.n_rows):
        outer_key = tuple(keys[outer_row] for keys in outer_keys)
        for inner_row in range(inner.n_rows):
            if outer_key == tuple(keys[inner_row] for keys in inner_keys):
                outer_rows.append(outer_row)
                inner_rows.append(inner_row)
    return _materialize(outer, inner, outer_rows, inner_rows, name)


def merge_join(
    outer: Table,
    inner: Table,
    join_columns: Sequence[tuple[str, str]],
    name: str | None = None,
) -> Table:
    """Sort-merge equi-join: sort both sides on the key, merge runs.

    Requires at least one join column (use :func:`hash_join` or
    :func:`nested_loop_join` for cross products).
    """
    _check_disjoint_columns(outer, inner)
    if not join_columns:
        raise ValueError("merge_join requires at least one join column")
    outer_keys = [outer.column(oc).values for oc, _ in join_columns]
    inner_keys = [inner.column(ic).values for _, ic in join_columns]
    outer_sorted = sorted(
        range(outer.n_rows), key=lambda r: tuple(k[r] for k in outer_keys)
    )
    inner_sorted = sorted(
        range(inner.n_rows), key=lambda r: tuple(k[r] for k in inner_keys)
    )

    def outer_key(position: int) -> tuple[int, ...]:
        row = outer_sorted[position]
        return tuple(k[row] for k in outer_keys)

    def inner_key(position: int) -> tuple[int, ...]:
        row = inner_sorted[position]
        return tuple(k[row] for k in inner_keys)

    outer_rows: list[int] = []
    inner_rows: list[int] = []
    i = j = 0
    while i < len(outer_sorted) and j < len(inner_sorted):
        left, right = outer_key(i), inner_key(j)
        if left < right:
            i += 1
        elif left > right:
            j += 1
        else:
            # A run of equal keys on both sides: emit the cross pairs.
            run_end = j
            while run_end < len(inner_sorted) and inner_key(run_end) == right:
                run_end += 1
            while i < len(outer_sorted) and outer_key(i) == left:
                for position in range(j, run_end):
                    outer_rows.append(outer_sorted[i])
                    inner_rows.append(inner_sorted[position])
                i += 1
            j = run_end
    return _materialize(outer, inner, outer_rows, inner_rows, name)
