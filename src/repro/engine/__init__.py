"""A small in-memory relational execution engine.

The paper's optimizer never executes plans — its experiments compare
estimated costs.  This engine exists to close the loop a real system
would: generate data matching the catalog statistics
(:mod:`repro.engine.datagen`), execute an optimized join tree with real
hash joins (:mod:`repro.engine.executor`), and check that estimated
intermediate sizes track measured ones.
"""

from repro.engine.table import Column, Table
from repro.engine.operators import (
    hash_join,
    merge_join,
    nested_loop_join,
    project,
    select,
)
from repro.engine.datagen import generate_database
from repro.engine.executor import ExecutionResult, execute_bushy, execute_order

__all__ = [
    "Column",
    "Table",
    "hash_join",
    "merge_join",
    "nested_loop_join",
    "select",
    "project",
    "generate_database",
    "ExecutionResult",
    "execute_bushy",
    "execute_order",
]
