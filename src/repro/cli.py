"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``optimize``
    Generate a synthetic query and optimize it with a chosen method.
``compare``
    Run several methods on one query and print a league table.
``experiment``
    Regenerate one of the paper's tables or figures at a chosen scale.
``robustness``
    Optimize a seeded workload under q-error-perturbed statistics,
    re-cost under the truth, and print the q-error-vs-regret curves
    (optionally closing the measurement-feedback loop).
``explain-trace``
    Reconstruct a plan's incumbent lineage ("why this plan") from a
    trace file recorded with ``--trace``.
``bench``
    Benchmark history ledger: ``bench record`` appends normalized
    ``BENCH_*.json`` entries to ``benchmarks/results/HISTORY.jsonl``;
    ``bench check`` compares the newest entry per benchmark against a
    trailing window and exits 1 on regression (the CI perf gate).
``obs``
    Passthrough to the trace reader CLI (``python -m repro.obs``):
    ``summarize`` / ``diff`` / ``profile``.
``methods``
    List the available optimization methods.
``benchmarks``
    List the synthetic benchmark variations.

Exit codes
----------
0
    Success: a verified plan was produced cleanly.
1
    Regression/divergence: ``bench check`` found a perf regression, or
    ``obs diff`` found trace divergence.
2
    Usage error: bad arguments, unknown method, unparsable query,
    invalid statistics.
3
    Degraded success (``--resilient``): a verified plan was produced,
    but the fallback chain had to recover from failures; the failure
    log is printed to stderr.
4
    No valid plan: every stage of the resilient fallback chain failed.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.core.budget import DEFAULT_UNITS_PER_N2
from repro.core.combinations import PAPER_METHODS, available_method_names, make_strategy
from repro.core.optimizer import optimize
from repro.core.state import PER_JOIN, PER_PLAN
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.experiments import figures as figures_module
from repro.experiments import tables as tables_module
from repro.experiments.report import render_experiment, render_matrix
from repro.workloads.benchmarks import benchmark_spec, benchmark_specs
from repro.workloads.generator import generate_query

_EXPERIMENTS = ("table1", "table2", "table3", "figure4", "figure5", "figure6", "figure7")

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_DEGRADED = 3
EXIT_NO_PLAN = 4


def _cost_model(name: str):
    if name == "memory":
        return MainMemoryCostModel()
    if name == "disk":
        return DiskCostModel()
    raise ValueError(f"unknown cost model {name!r}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Large join query optimization (Swami, SIGMOD 1988/1989)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--joins", type=int, default=20, help="number of joins N")
    common.add_argument("--seed", type=int, default=0, help="random seed")
    common.add_argument(
        "--benchmark", type=int, default=0, help="benchmark variation 0..9"
    )
    common.add_argument(
        "--model", choices=("memory", "disk"), default="memory", help="cost model"
    )
    common.add_argument(
        "--time-factor", type=float, default=9.0, help="time limit factor k in kN^2"
    )

    evaluation = argparse.ArgumentParser(add_help=False)
    evaluation.add_argument(
        "--no-incremental",
        dest="incremental",
        action="store_false",
        help="price every candidate with a full plan-cost walk instead of "
        "the prefix-cached incremental engine (see docs/performance.md)",
    )
    evaluation.add_argument(
        "--batch-costing",
        action="store_true",
        help="price candidate batches through the vectorized kernel "
        "(repro.cost.vectorized); bit-identical results, fastest with "
        "numpy installed (see docs/performance.md)",
    )
    evaluation.add_argument(
        "--budget-accounting",
        choices=(PER_PLAN, PER_JOIN),
        default=PER_PLAN,
        help="work-unit pricing: 'per-plan' charges N joins per candidate "
        "(paper-compatible default); 'per-join' charges only joins "
        "actually evaluated",
    )

    parallelism = argparse.ArgumentParser(add_help=False)
    parallelism.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan restarts across this many worker processes; the result "
        "is bit-identical to --workers 1 for any seed (see docs/testing.md)",
    )
    parallelism.add_argument(
        "--restarts",
        type=int,
        default=None,
        help="independent multi-start restarts to orchestrate (default 8 "
        "when --workers is given; unset keeps the single-trajectory path)",
    )

    resilience = argparse.ArgumentParser(add_help=False)
    resilience.add_argument(
        "--resilient",
        action="store_true",
        help="absorb optimizer failures via the fallback chain "
        "(exit code 3 when the result is degraded)",
    )
    resilience.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="rotated-seed retries per stage of the fallback chain",
    )

    observability = argparse.ArgumentParser(add_help=False)
    observability.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        default=None,
        help="record a deterministic trace of the run's search dynamics "
        "to this JSONL file (read it with `python -m repro.obs "
        "summarize`); tracing never changes the result or the rng "
        "stream (see docs/observability.md)",
    )
    observability.add_argument(
        "--metrics",
        metavar="FILE.json",
        default=None,
        help="write the run's metrics registry (counters, gauges, "
        "histograms) to this JSON file",
    )
    observability.add_argument(
        "--wall",
        action="store_true",
        help="with --trace, also record a wall-clock sidecar "
        "(FILE.jsonl.wall) for `repro obs profile --wall`; the trace "
        "itself stays byte-identical (timestamps never enter it)",
    )

    cmd = sub.add_parser(
        "optimize",
        parents=[common, evaluation, resilience, parallelism, observability],
        help="optimize one query",
    )
    cmd.add_argument("--method", default="IAI", help="optimization method")
    cmd.add_argument("--explain", action="store_true", help="print the join tree")

    cmd = sub.add_parser(
        "compare",
        parents=[common, evaluation, parallelism],
        help="compare methods",
    )
    cmd.add_argument(
        "--methods",
        nargs="+",
        default=list(PAPER_METHODS),
        help="methods to compare",
    )
    cmd.add_argument(
        "--gap",
        action="store_true",
        help="also run the exact branch-and-bound and add a true-cost/"
        "exact-optimum column (see docs/exact.md)",
    )
    cmd.add_argument(
        "--max-exact",
        type=int,
        default=16,
        help="relation ceiling for the exact pass; larger queries anchor "
        "the gap to the hybrid (unproven) reference instead",
    )

    cmd = sub.add_parser(
        "exact",
        parents=[common],
        help="exact optimum (branch-and-bound or dynamic programming)",
    )
    cmd.add_argument(
        "--max-relations",
        type=int,
        default=16,
        help="refuse the exponential search beyond this many relations",
    )
    cmd.add_argument(
        "--engine",
        choices=("dp", "bnb"),
        default="dp",
        help="'dp' is the System R subset DP (exact under the static "
        "estimator); 'bnb' is the branch-and-bound, exact under the true "
        "propagating model (see docs/exact.md)",
    )

    cmd = sub.add_parser(
        "gap",
        parents=[common, evaluation, parallelism],
        help="optimality gaps: every method's true cost / exact optimum",
    )
    cmd.set_defaults(joins=10)
    cmd.add_argument(
        "--methods",
        nargs="+",
        default=list(PAPER_METHODS),
        help="methods to measure",
    )
    cmd.add_argument(
        "--max-exact",
        type=int,
        default=16,
        help="relation ceiling for the proven-exact pass; above it the "
        "hybrid (unproven) reference anchors the gaps",
    )
    cmd.add_argument(
        "--json",
        metavar="FILE.json",
        default=None,
        help="also write the byte-stable gap report to this file",
    )

    cmd = sub.add_parser(
        "landscape", parents=[common], help="cost distribution of random plans"
    )
    cmd.add_argument("--samples", type=int, default=1000)

    cmd = sub.add_parser("experiment", help="regenerate a paper table/figure")
    cmd.add_argument("name", choices=_EXPERIMENTS + ("all",))
    cmd.add_argument("--queries-per-n", type=int, default=4)
    cmd.add_argument("--n-values", type=int, nargs="+", default=[20, 30])
    cmd.add_argument("--seed", type=int, default=0)
    cmd.add_argument(
        "--units-per-n2", type=float, default=DEFAULT_UNITS_PER_N2 / 3
    )

    cmd = sub.add_parser(
        "robustness",
        parents=[common, observability],
        help="regret under q-error-perturbed statistics",
    )
    cmd.set_defaults(joins=10, time_factor=3.0)
    cmd.add_argument(
        "-q",
        "--q-values",
        type=float,
        nargs="+",
        default=[1.0, 2.0, 5.0, 10.0],
        help="q-error magnitudes to sweep (each >= 1)",
    )
    cmd.add_argument(
        "--methods",
        nargs="+",
        default=["IAI", "II", "SIMPLI_SQUARED"],
        help="methods to measure (SIMPLI_SQUARED is the estimate-free floor)",
    )
    cmd.add_argument(
        "--queries", type=int, default=5, help="seeded queries in the workload"
    )
    cmd.add_argument(
        "--trials", type=int, default=2, help="perturbation draws per (query, q)"
    )
    cmd.add_argument(
        "--distribution",
        choices=("lognormal", "loguniform"),
        default="lognormal",
        help="error-factor distribution of the ErrorModel",
    )
    cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan harness trials across worker processes; the report is "
        "byte-identical to --workers 1 for any seed",
    )
    cmd.add_argument(
        "--json",
        metavar="FILE.json",
        default=None,
        help="also write the byte-stable robustness report to this file",
    )
    cmd.add_argument(
        "--feedback",
        action="store_true",
        help="additionally run one measurement-feedback round at the "
        "largest q and report median regret before/after",
    )
    cmd.add_argument(
        "--feedback-max-rows",
        type=int,
        default=200,
        help="cap generated table sizes during feedback execution",
    )

    cmd = sub.add_parser(
        "sql",
        parents=[evaluation, resilience, parallelism, observability],
        help="optimize a SQL query against a catalog",
    )
    cmd.add_argument("query", help="SQL text (quote the whole query)")
    cmd.add_argument(
        "--catalog", required=True, help="path to a JSON statistics catalog"
    )
    cmd.add_argument("--method", default="IAI")
    cmd.add_argument("--model", choices=("memory", "disk"), default="memory")
    cmd.add_argument("--time-factor", type=float, default=9.0)
    cmd.add_argument("--seed", type=int, default=0)
    cmd.add_argument("--explain", action="store_true")

    cmd = sub.add_parser(
        "explain-trace",
        help="reconstruct a plan's incumbent lineage from a trace file",
    )
    cmd.add_argument("trace", help="path to a .jsonl trace file")
    cmd.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is canonical and byte-stable)",
    )

    cmd = sub.add_parser(
        "bench",
        help="benchmark history ledger (record BENCH_*.json, check trends)",
    )
    bench_sub = cmd.add_subparsers(dest="bench_command", required=True)
    rec = bench_sub.add_parser(
        "record",
        help="append normalized BENCH_*.json entries to the history ledger",
    )
    rec.add_argument(
        "files",
        nargs="*",
        help="benchmark JSON files (default: benchmarks/results/BENCH_*.json)",
    )
    rec.add_argument(
        "--history",
        default=None,
        help="ledger path (default: benchmarks/results/HISTORY.jsonl)",
    )
    rec.add_argument(
        "--note",
        default=None,
        help="run metadata stamped on every entry (commit id, 'backfill', ...)",
    )
    chk = bench_sub.add_parser(
        "check",
        help="compare newest entries against their trailing window; "
        "exits 1 on regression",
    )
    chk.add_argument("--history", default=None, help="ledger path")
    chk.add_argument(
        "--window", type=int, default=None, help="trailing entries compared"
    )
    chk.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="base relative deviation allowed (noise spread is added)",
    )
    chk.add_argument(
        "--min-history",
        type=int,
        default=None,
        help="entries required before a benchmark gates",
    )
    chk.add_argument(
        "--format", choices=("text", "json"), default="text"
    )

    cmd = sub.add_parser(
        "obs",
        help="trace reader passthrough (= python -m repro.obs ...)",
    )
    cmd.add_argument(
        "obs_args",
        nargs=argparse.REMAINDER,
        help="arguments for the repro.obs reader CLI "
        "(summarize | diff | profile)",
    )

    sub.add_parser("methods", help="list optimization methods")
    sub.add_parser("benchmarks", help="list benchmark variations")
    return parser


def _make_tracer(args: argparse.Namespace):
    """A recording tracer when ``--trace``/``--metrics`` asked for one."""
    if args.trace is None and args.metrics is None:
        return None
    if getattr(args, "wall", False) and args.trace is not None:
        # The sanctioned DET002 clock boundary: timestamps go to a
        # sidecar file, never into the trace (see repro.obs.wallclock).
        from repro.obs.wallclock import WallClockTracer

        return WallClockTracer()
    from repro.obs import RecordingTracer

    return RecordingTracer()


def _flush_observability(tracer, args: argparse.Namespace, result) -> None:
    """Write the trace/metrics files the flags requested."""
    if tracer is None:
        return
    from repro.obs import write_metrics, write_trace

    if args.trace is not None:
        write_trace(
            tracer.events,
            args.trace,
            meta={
                "method": result.method,
                "n_relations": result.graph.n_relations,
                "seed": args.seed,
            },
        )
        wall = getattr(tracer, "wall", None)
        if wall is not None:
            from repro.obs.wallclock import sidecar_path, write_wall_sidecar

            write_wall_sidecar(wall, sidecar_path(args.trace))
    if args.metrics is not None:
        write_metrics(tracer.metrics, args.metrics)


def _report_degradation(result) -> int:
    """Print the failure log to stderr; return the appropriate exit code."""
    if not result.degraded:
        return EXIT_OK
    from repro.robustness.resilience import FailureLog

    print(
        FailureLog(records=list(result.failures)).summary(), file=sys.stderr
    )
    return EXIT_DEGRADED


def _cmd_optimize(args: argparse.Namespace) -> int:
    spec = benchmark_spec(args.benchmark)
    query = generate_query(spec, args.joins, args.seed)
    tracer = _make_tracer(args)
    result = optimize(
        query,
        method=args.method,
        model=_cost_model(args.model),
        time_factor=args.time_factor,
        seed=args.seed,
        resilient=args.resilient,
        max_retries=args.max_retries,
        incremental=args.incremental,
        batch_costing=args.batch_costing,
        budget_accounting=args.budget_accounting,
        workers=args.workers,
        restarts=args.restarts,
        trace=tracer,
    )
    _flush_observability(tracer, args, result)
    print(f"query          : {query.name} (N={query.n_joins})")
    print(f"method         : {result.method}")
    print(f"plan cost      : {result.cost:,.0f}")
    print(f"plans evaluated: {result.n_evaluations:,}")
    print(f"join order     : {result.order}")
    if result.degraded:
        print(f"degraded       : yes ({len(result.failures)} failure(s))")
    if args.explain:
        print()
        print(result.join_tree().explain())
    return _report_degradation(result)


def _exact_reference(query, model, args: argparse.Namespace):
    """The exact (or hybrid, beyond the ceiling) reference for gaps.

    Always computed in the parent process, so gap output inherits the
    comparison's workers-invariance byte for byte.
    """
    from repro.core.exact import exact_optimum, hybrid_optimum

    if query.graph.n_relations <= args.max_exact:
        return exact_optimum(
            query.graph,
            model,
            max_relations=args.max_exact,
            seed=args.seed,
        )
    return hybrid_optimum(
        query.graph,
        model,
        max_exact=args.max_exact,
        seed=args.seed,
        time_factor=args.time_factor,
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.combinations import compare_methods
    from repro.robustness.resilience import FailureLog

    spec = benchmark_spec(args.benchmark)
    query = generate_query(spec, args.joins, args.seed)
    model = _cost_model(args.model)
    for method in args.methods:
        make_strategy(method)  # validate the name before the long run
    exact = _exact_reference(query, model, args) if args.gap else None
    failure_log = FailureLog()
    results = compare_methods(
        query,
        methods=args.methods,
        model=model,
        time_factor=args.time_factor,
        seed=args.seed,
        incremental=args.incremental,
        batch_costing=args.batch_costing,
        budget_accounting=args.budget_accounting,
        workers=args.workers,
        failure_log=failure_log,
    )
    if failure_log:
        print(failure_log.summary(), file=sys.stderr)
    best = min(result.cost for result in results.values())
    ranked = sorted(results.items(), key=lambda kv: kv[1].cost)
    if exact is None:
        column_labels = ["scaled", "evals"]
        values = [
            [result.cost / best, float(result.n_evaluations)]
            for _, result in ranked
        ]
    else:
        from repro.core.exact import optimality_gap

        column_labels = ["scaled", "gap", "evals"]
        values = [
            [
                result.cost / best,
                optimality_gap(result.cost, exact.cost),
                float(result.n_evaluations),
            ]
            for _, result in ranked
        ]
    print(
        render_matrix(
            f"{query.name}: scaled costs at {args.time_factor:g}N^2",
            row_labels=[method for method, _ in ranked],
            column_labels=column_labels,
            values=values,
            row_header="method",
        )
    )
    if exact is not None:
        anchor = "proven optimum" if exact.proven else f"best known ({exact.mode})"
        print(f"exact anchor: {exact.cost:,.2f} ({anchor})")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    kwargs = dict(
        n_values=tuple(args.n_values),
        queries_per_n=args.queries_per_n,
        units_per_n2=args.units_per_n2,
        seed=args.seed,
    )
    if args.name == "all":
        for name in _EXPERIMENTS:
            sub_args = argparse.Namespace(**{**vars(args), "name": name})
            _cmd_experiment(sub_args)
            print()
        return 0
    if args.name == "table3":
        result = tables_module.table3(**kwargs)
        rows = sorted(result.rows)
        print(
            render_matrix(
                "Table 3: benchmark variations at 9N^2",
                row_labels=[str(n) for n in rows],
                column_labels=list(result.methods),
                values=[
                    [result.rows[n][m] for m in result.methods] for n in rows
                ],
                row_header="Bench",
            )
        )
        return 0
    runner = {
        "table1": tables_module.table1,
        "table2": tables_module.table2,
        "figure4": figures_module.figure4,
        "figure5": figures_module.figure5,
        "figure6": figures_module.figure6,
        "figure7": figures_module.figure7,
    }[args.name]
    result = runner(**kwargs)
    print(render_experiment(f"{args.name} (mean scaled cost)", result))
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    spec = benchmark_spec(args.benchmark)
    query = generate_query(spec, args.joins, args.seed)
    if args.engine == "bnb":
        from repro.core.exact import exact_optimum

        bnb = exact_optimum(
            query.graph,
            _cost_model(args.model),
            max_relations=args.max_relations,
            seed=args.seed,
        )
        pruned = bnb.nodes_pruned_bound + bnb.nodes_pruned_dominated
        print(f"query            : {query.name} (N={query.n_joins})")
        print(f"optimal order    : {bnb.order}")
        print(f"optimal cost     : {bnb.cost:,.2f}")
        print(f"proven           : {'yes' if bnb.proven else 'no'}")
        print(f"nodes expanded   : {bnb.nodes_expanded:,}")
        print(f"nodes pruned     : {pruned:,}")
        print(f"cost evaluations : {bnb.n_cost_evaluations:,}")
        return 0
    from repro.core.dynamic_programming import dp_optimal_order

    result = dp_optimal_order(
        query.graph, _cost_model(args.model), max_relations=args.max_relations
    )
    print(f"query            : {query.name} (N={query.n_joins})")
    print(f"optimal order    : {result.order}")
    print(f"static-world cost: {result.cost:,.2f}")
    print(f"propagated cost  : {result.recost:,.2f}")
    print(f"subsets explored : {result.n_subsets:,}")
    print(f"cost evaluations : {result.n_cost_evaluations:,}")
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    from repro.core.combinations import compare_methods
    from repro.core.exact import build_gap_report, gap_report_json
    from repro.robustness.resilience import FailureLog

    spec = benchmark_spec(args.benchmark)
    query = generate_query(spec, args.joins, args.seed)
    model = _cost_model(args.model)
    for method in args.methods:
        make_strategy(method)  # validate the name before the long run
    exact = _exact_reference(query, model, args)
    failure_log = FailureLog()
    results = compare_methods(
        query,
        methods=args.methods,
        model=model,
        time_factor=args.time_factor,
        seed=args.seed,
        incremental=args.incremental,
        batch_costing=args.batch_costing,
        budget_accounting=args.budget_accounting,
        workers=args.workers,
        failure_log=failure_log,
    )
    if failure_log:
        print(failure_log.summary(), file=sys.stderr)
    report = build_gap_report(query, model, results, exact)
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(gap_report_json(report))
    print(
        render_matrix(
            f"{query.name}: optimality gaps at {args.time_factor:g}N^2",
            row_labels=[row.method for row in report.rows],
            column_labels=["gap", "evals"],
            values=[
                [row.gap, float(row.n_evaluations)] for row in report.rows
            ],
            row_header="method",
        )
    )
    anchor = "proven optimum" if report.proven else f"best known ({report.mode})"
    order = "-".join(str(vertex) for vertex in report.exact_order)
    pruned = report.nodes_pruned_bound + report.nodes_pruned_dominated
    print(f"exact cost    : {report.exact_cost:,.2f} ({anchor})")
    print(f"exact order   : {order}")
    print(f"nodes expanded: {report.nodes_expanded:,} (pruned {pruned:,})")
    return 0


def _cmd_landscape(args: argparse.Namespace) -> int:
    from repro.experiments.landscape import sample_cost_distribution, summarize

    spec = benchmark_spec(args.benchmark)
    query = generate_query(spec, args.joins, args.seed)
    costs = sample_cost_distribution(
        query.graph, _cost_model(args.model), args.samples, args.seed
    )
    summary = summarize(costs)
    print(f"query              : {query.name} (N={query.n_joins})")
    print(f"samples            : {summary.n_samples}")
    print(f"min / median / max : {summary.minimum:,.0f} / "
          f"{summary.median:,.0f} / {summary.maximum:,.0f}")
    print(f"spread (max/min)   : {summary.spread:,.0f}x")
    print(f"within 2x of best  : {summary.fraction_within_2x:.1%}")
    print(f"within 10x of best : {summary.fraction_within_10x:.1%}")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.experiments.robustness import (
        robustness_experiment,
        robustness_workload,
    )
    from repro.obs import NULL_TRACER, write_metrics, write_trace
    from repro.robustness.harness import RobustnessConfig, write_report
    from repro.robustness.resilience import FailureLog

    for method in args.methods:
        make_strategy(method)  # validate the names before the long run
    config = RobustnessConfig(
        methods=tuple(method.upper() for method in args.methods),
        q_values=tuple(args.q_values),
        n_trials=args.trials,
        distribution=args.distribution,
        time_factor=args.time_factor,
        seed=args.seed,
        workers=args.workers,
    )
    spec = benchmark_spec(args.benchmark)
    tracer = _make_tracer(args)
    failure_log = FailureLog()
    report = robustness_experiment(
        spec,
        config,
        n_queries=args.queries,
        n_joins=args.joins,
        model=_cost_model(args.model),
        tracer=tracer if tracer is not None else NULL_TRACER,
        failure_log=failure_log,
    )
    if failure_log:
        print(failure_log.summary(), file=sys.stderr)
    if tracer is not None:
        if args.trace is not None:
            write_trace(
                tracer.events,
                args.trace,
                meta={"command": "robustness", "seed": args.seed},
            )
        if args.metrics is not None:
            write_metrics(tracer.metrics, args.metrics)
    if args.json is not None:
        write_report(report, args.json)
    print(
        render_matrix(
            f"median regret, {args.queries} queries x {args.trials} trials "
            f"({config.distribution})",
            row_labels=list(config.methods),
            column_labels=[f"q={q:g}" for q in config.q_values],
            values=[
                [point.median_regret for point in report.curve(method)]
                for method in config.methods
            ],
            row_header="method",
        )
    )
    worst = max(trial.regret for trial in report.trials)
    print(f"worst regret observed: {worst:.2f}x")
    if args.feedback:
        from repro.robustness.feedback import run_feedback

        queries = robustness_workload(
            spec, n_queries=args.queries, n_joins=args.joins, seed=config.seed
        )
        feedback = run_feedback(
            queries,
            q=max(config.q_values),
            seed=config.seed,
            method=config.methods[0],
            model=_cost_model(args.model),
            time_factor=config.time_factor,
            distribution=config.distribution,
            max_rows=args.feedback_max_rows,
        )
        print(
            f"feedback round at q={feedback.q:g}: median regret "
            f"{feedback.median_regret_before:.3f} -> "
            f"{feedback.median_regret_after:.3f}"
        )
    return EXIT_OK


def _cmd_sql(args: argparse.Namespace) -> int:
    from repro.frontend import StatsCatalog, parse_query

    catalog = StatsCatalog.from_json(args.catalog)
    query = parse_query(args.query, catalog)
    tracer = _make_tracer(args)
    result = optimize(
        query,
        method=args.method,
        model=_cost_model(args.model),
        time_factor=args.time_factor,
        seed=args.seed,
        resilient=args.resilient,
        max_retries=args.max_retries,
        incremental=args.incremental,
        batch_costing=args.batch_costing,
        budget_accounting=args.budget_accounting,
        workers=args.workers,
        restarts=args.restarts,
        trace=tracer,
    )
    _flush_observability(tracer, args, result)
    print(f"relations : {query.graph.n_relations}  joins: {query.n_joins}")
    print(f"method    : {result.method}")
    print(f"plan cost : {result.cost:,.0f}")
    print(f"join order: {result.order}")
    if result.degraded:
        print(f"degraded  : yes ({len(result.failures)} failure(s))")
    if args.explain:
        print()
        print(result.join_tree().explain())
    return _report_degradation(result)


def _cmd_methods() -> int:
    for name in available_method_names():
        print(f"{name:6s} {make_strategy(name).description}")
    return 0


def _cmd_benchmarks() -> int:
    for number, spec in sorted(benchmark_specs().items()):
        print(
            f"{number}  {spec.name:18s} cutoff={spec.join_cutoff_probability:<5g}"
            f" bias={spec.graph_bias}"
        )
    return 0


def _cmd_explain_trace(args: argparse.Namespace) -> int:
    from repro.obs import TraceFormatError, read_trace
    from repro.obs.provenance import (
        build_provenance,
        provenance_json,
        render_provenance,
    )

    try:
        events = read_trace(args.trace)
    except (FileNotFoundError, TraceFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    provenance = build_provenance(events)
    if args.format == "json":
        sys.stdout.write(provenance_json(provenance))
    else:
        print(render_provenance(provenance))
    return EXIT_OK


def _cmd_bench(args: argparse.Namespace) -> int:
    import glob as glob_module

    from repro.obs import bench as bench_module

    history = args.history or bench_module.DEFAULT_HISTORY
    if args.bench_command == "record":
        files = list(args.files) or sorted(
            glob_module.glob(
                os.path.join("benchmarks", "results", "BENCH_*.json")
            )
        )
        if not files:
            print("error: no benchmark JSON files found", file=sys.stderr)
            return EXIT_USAGE
        try:
            entries = bench_module.record(files, history, note=args.note)
        except (FileNotFoundError, bench_module.BenchFormatError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        print(f"recorded {len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'} to {history}")
        return EXIT_OK
    try:
        report = bench_module.check(
            history,
            window=(
                args.window
                if args.window is not None
                else bench_module.DEFAULT_WINDOW
            ),
            threshold=(
                args.threshold
                if args.threshold is not None
                else bench_module.DEFAULT_THRESHOLD
            ),
            min_history=(
                args.min_history
                if args.min_history is not None
                else bench_module.DEFAULT_MIN_HISTORY
            ),
        )
    except (FileNotFoundError, bench_module.BenchFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        import json as json_module

        sys.stdout.write(
            json_module.dumps(
                bench_module.check_report_dict(report),
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
    else:
        print(bench_module.render_check(report))
    return EXIT_OK if report.ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.__main__ import main as obs_main

    return obs_main(args.obs_args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "optimize":
        return _cmd_optimize(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "exact":
        return _cmd_exact(args)
    if args.command == "gap":
        return _cmd_gap(args)
    if args.command == "landscape":
        return _cmd_landscape(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "robustness":
        return _cmd_robustness(args)
    if args.command == "sql":
        return _cmd_sql(args)
    if args.command == "explain-trace":
        return _cmd_explain_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "methods":
        return _cmd_methods()
    if args.command == "benchmarks":
        return _cmd_benchmarks()
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code (see module docstring)."""
    from repro.robustness.resilience import NoValidPlanError

    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except NoValidPlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_NO_PLAN
    except (ValueError, KeyError) as exc:
        # Unknown methods/benchmarks/tables, unparsable queries, invalid
        # statistics: usage errors, matching argparse's own exit code.
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        # Reader closed early (e.g. `repro explain-trace t.jsonl | head`):
        # not an error.  Point stdout at devnull so the interpreter's
        # exit flush cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
