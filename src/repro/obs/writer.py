"""Trace and metrics serialization: JSONL out, JSONL in.

The on-disk trace format is one JSON object per line, preceded by a
header line carrying the format version::

    {"kind": "trace_header", "version": 1}
    {"seq": 0, "clock": 0.0, "kind": "run_start", "data": {...}}
    {"seq": 1, "clock": 19.0, "kind": "move", "data": {...}}

Line-oriented so traces stream (a reader can summarize a trace larger
than memory line by line) and diff cleanly under standard tools.  Keys
are emitted in a fixed order and floats round-trip exactly (``json``
serializes them via ``repr``), so *identical traces serialize to
identical bytes* — the property ``python -m repro.obs diff`` and the
workers=N ≡ workers=1 companion check rely on.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Iterator

from repro.obs.events import TraceEvent, TraceFormatError
from repro.obs.metrics import Metrics

#: Format version stamped on every trace file.
TRACE_VERSION = 1

_HEADER_KIND = "trace_header"


def _dump(record: dict[str, Any]) -> str:
    return json.dumps(record, separators=(",", ":"), sort_keys=False)


def write_trace(
    events: Iterable[TraceEvent], path: str, meta: dict[str, Any] | None = None
) -> None:
    """Write a trace file: header line, then one event per line.

    ``meta`` (method, seed, query size, ...) rides on the header so the
    reader CLI can label its summary without scanning for ``run_start``.
    """
    header: dict[str, Any] = {"kind": _HEADER_KIND, "version": TRACE_VERSION}
    if meta:
        header["meta"] = dict(meta)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_dump(header) + "\n")
        for event in events:
            handle.write(_dump(event.to_json_dict()) + "\n")


def iter_trace(handle: IO[str]) -> Iterator[TraceEvent]:
    """Stream events from an open trace file (header validated first)."""
    first = handle.readline()
    if not first.strip():
        raise TraceFormatError("empty trace file")
    header = _parse_line(first, 1)
    if header.get("kind") != _HEADER_KIND:
        raise TraceFormatError(
            "missing trace_header line (is this a repro.obs trace?)"
        )
    if header.get("version") != TRACE_VERSION:
        raise TraceFormatError(
            f"unsupported trace version {header.get('version')!r}; "
            f"this reader understands version {TRACE_VERSION}"
        )
    for number, line in enumerate(handle, start=2):
        if not line.strip():
            continue
        yield TraceEvent.from_json_dict(_parse_line(line, number))


def _parse_line(line: str, number: int) -> dict[str, Any]:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"line {number}: not valid JSON: {exc}")
    if not isinstance(record, dict):
        raise TraceFormatError(f"line {number}: expected a JSON object")
    return record


def read_trace(path: str) -> list[TraceEvent]:
    """Load a whole trace file into memory."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_trace(handle))


def read_trace_meta(path: str) -> dict[str, Any]:
    """The header's ``meta`` table (empty when the writer attached none)."""
    with open(path, "r", encoding="utf-8") as handle:
        header = _parse_line(handle.readline() or "null", 1)
    if not isinstance(header, dict) or header.get("kind") != _HEADER_KIND:
        raise TraceFormatError("missing trace_header line")
    meta = header.get("meta", {})
    return dict(meta) if isinstance(meta, dict) else {}


def write_metrics(metrics: Metrics, path: str) -> None:
    """Persist a metrics snapshot as pretty-printed, sorted JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics.snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_metrics(path: str) -> Metrics:
    """Load a metrics snapshot written by :func:`write_metrics`."""
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict):
        raise TraceFormatError("metrics file must hold a JSON object")
    return Metrics.from_snapshot(snapshot)
