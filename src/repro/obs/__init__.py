"""repro.obs — deterministic tracing and metrics for the optimizer stack.

The package gives every optimizer run an optional structured record of
its search dynamics (a *trace* of events stamped with the logical
budget clock) plus an aggregate *metrics* registry — without ever
perturbing the run itself.  The determinism contract, event schema, and
metrics catalog live in ``docs/observability.md``; the contract in one
line: **a traced run is bit-identical to an untraced one, and a seeded
run's trace is a pure function of its seed.**

Entry points::

    optimize(query, method="SA", seed=1, trace="run.jsonl")   # file sink
    tracer = RecordingTracer()
    optimize(query, method="SA", seed=1, trace=tracer)        # in memory
    python -m repro.obs summarize run.jsonl                   # reader CLI
"""

from repro.obs.events import (
    ACCEPTED,
    EVENT_KINDS,
    MOVE_OUTCOMES,
    PRUNED,
    REJECTED,
    TraceEvent,
    TraceFormatError,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, Metrics
from repro.obs.summarize import (
    TraceSummary,
    diff_traces,
    render_summary,
    summarize_events,
)
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer, as_tracer
from repro.obs.writer import (
    TRACE_VERSION,
    iter_trace,
    read_metrics,
    read_trace,
    read_trace_meta,
    write_metrics,
    write_trace,
)

__all__ = [
    "ACCEPTED",
    "DEFAULT_BUCKETS",
    "EVENT_KINDS",
    "Histogram",
    "Metrics",
    "MOVE_OUTCOMES",
    "NULL_TRACER",
    "PRUNED",
    "REJECTED",
    "RecordingTracer",
    "TRACE_VERSION",
    "TraceEvent",
    "TraceFormatError",
    "TraceSummary",
    "Tracer",
    "as_tracer",
    "diff_traces",
    "iter_trace",
    "read_metrics",
    "read_trace",
    "read_trace_meta",
    "render_summary",
    "summarize_events",
    "write_metrics",
    "write_trace",
]
