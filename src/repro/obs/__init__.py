"""repro.obs — deterministic tracing and metrics for the optimizer stack.

The package gives every optimizer run an optional structured record of
its search dynamics (a *trace* of events stamped with the logical
budget clock) plus an aggregate *metrics* registry — without ever
perturbing the run itself.  The determinism contract, event schema, and
metrics catalog live in ``docs/observability.md``; the contract in one
line: **a traced run is bit-identical to an untraced one, and a seeded
run's trace is a pure function of its seed.**

Entry points::

    optimize(query, method="SA", seed=1, trace="run.jsonl")   # file sink
    tracer = RecordingTracer()
    optimize(query, method="SA", seed=1, trace=tracer)        # in memory
    python -m repro.obs summarize run.jsonl                   # reader CLI
"""

from repro.obs.events import (
    ACCEPTED,
    EVENT_KINDS,
    MOVE_OUTCOMES,
    PRUNED,
    REJECTED,
    TraceEvent,
    TraceFormatError,
)
from repro.obs.bench import (
    BenchCheckReport,
    BenchDelta,
    check as bench_check,
    record as bench_record,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, Metrics
from repro.obs.profile import (
    SearchProfile,
    collapsed_stacks,
    profile_events,
    profile_json,
    profile_report,
    render_profile,
)
from repro.obs.provenance import (
    IncumbentStep,
    PlanProvenance,
    build_provenance,
    provenance_json,
    render_provenance,
)
from repro.obs.summarize import (
    TraceSummary,
    diff_traces,
    render_summary,
    summarize_events,
    summary_json,
)
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer, as_tracer
from repro.obs.writer import (
    TRACE_VERSION,
    iter_trace,
    read_metrics,
    read_trace,
    read_trace_meta,
    write_metrics,
    write_trace,
)

__all__ = [
    "ACCEPTED",
    "BenchCheckReport",
    "BenchDelta",
    "DEFAULT_BUCKETS",
    "EVENT_KINDS",
    "Histogram",
    "IncumbentStep",
    "Metrics",
    "MOVE_OUTCOMES",
    "NULL_TRACER",
    "PRUNED",
    "PlanProvenance",
    "REJECTED",
    "RecordingTracer",
    "SearchProfile",
    "TRACE_VERSION",
    "TraceEvent",
    "TraceFormatError",
    "TraceSummary",
    "Tracer",
    "as_tracer",
    "bench_check",
    "bench_record",
    "build_provenance",
    "collapsed_stacks",
    "diff_traces",
    "iter_trace",
    "profile_events",
    "profile_json",
    "profile_report",
    "provenance_json",
    "read_metrics",
    "read_trace",
    "read_trace_meta",
    "render_profile",
    "render_provenance",
    "render_summary",
    "summarize_events",
    "summary_json",
    "write_metrics",
    "write_trace",
]
