"""Reader CLI: ``python -m repro.obs summarize|diff|profile``.

``summarize TRACE.jsonl`` prints a per-kind/per-phase report (or, with
``--format json``, a canonical machine-readable document) and exits 0;
``diff A.jsonl B.jsonl`` exits 0 when the traces are bit-identical and
1 with a divergence report when they are not (the CI determinism gate
is literally this command); ``profile TRACE.jsonl`` folds the trace
into the method → phase → move-kind attribution tree (text, canonical
JSON, or folded-stack lines for flamegraph tooling; ``--wall`` adds the
wall-clock column from the ``TRACE.jsonl.wall`` sidecar).

Exit codes: 0 success, 1 traces differ (``diff`` only), 2 usage error —
a missing, empty, or malformed trace file always produces a one-line
``error:`` message on stderr and exit code 2, never a traceback.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.obs.events import TraceFormatError
from repro.obs.profile import (
    collapsed_stacks,
    profile_events,
    profile_json,
    profile_report,
    render_profile,
)
from repro.obs.summarize import (
    diff_traces,
    render_summary,
    summarize_events,
    summary_json,
)
from repro.obs.writer import iter_trace, read_trace, read_trace_meta

EXIT_OK = 0
EXIT_DIFFERS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Read repro.obs trace files (JSONL).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="print an aggregate report of one trace"
    )
    summarize.add_argument("trace", help="path to a .jsonl trace file")
    summarize.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is canonical and byte-stable)",
    )

    diff = commands.add_parser(
        "diff", help="compare two traces event-by-event"
    )
    diff.add_argument("left", help="first trace file")
    diff.add_argument("right", help="second trace file")
    diff.add_argument(
        "--max-report",
        type=int,
        default=10,
        help="stop after this many reported differences (default: 10)",
    )

    profile = commands.add_parser(
        "profile",
        help="fold one trace into the budget attribution tree",
    )
    profile.add_argument("trace", help="path to a .jsonl trace file")
    profile.add_argument(
        "--format",
        choices=("text", "json", "collapsed"),
        default="text",
        help="output format: human tree, canonical JSON report, or "
        "folded-stack lines for flamegraph tooling",
    )
    profile.add_argument(
        "--wall",
        action="store_true",
        help="add the wall-clock column from the TRACE.wall sidecar "
        "(recorded by `repro optimize --trace ... --wall`)",
    )
    return parser


def _cmd_summarize(args: argparse.Namespace) -> int:
    with open(args.trace, "r", encoding="utf-8") as handle:
        summary = summarize_events(iter_trace(handle))
    meta = read_trace_meta(args.trace)
    if args.format == "json":
        sys.stdout.write(summary_json(summary, meta))
    else:
        print(render_summary(summary, meta))
    return EXIT_OK


def _cmd_profile(args: argparse.Namespace) -> int:
    wall = None
    if args.wall:
        from repro.obs.wallclock import read_wall_sidecar, sidecar_path

        wall = read_wall_sidecar(sidecar_path(args.trace))
    with open(args.trace, "r", encoding="utf-8") as handle:
        profile = profile_events(iter_trace(handle), wall=wall)
    if args.format == "json":
        sys.stdout.write(profile_json(profile))
    elif args.format == "collapsed":
        for line in collapsed_stacks(profile_report(profile)):
            print(line)
    else:
        print(render_profile(profile))
    return EXIT_OK


def _cmd_diff(args: argparse.Namespace) -> int:
    differences = diff_traces(
        read_trace(args.left),
        read_trace(args.right),
        max_report=args.max_report,
    )
    if not differences:
        print("traces are identical")
        return EXIT_OK
    for line in differences:
        print(line)
    return EXIT_DIFFERS


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            return _cmd_summarize(args)
        if args.command == "profile":
            return _cmd_profile(args)
        return _cmd_diff(args)
    except BrokenPipeError:
        # Reader closed early (e.g. `summarize trace | head`): not an
        # error.  Point stdout at devnull so the interpreter's exit
        # flush cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK
    except (OSError, TraceFormatError) as exc:
        # Unreadable path (missing, a directory, permission) or a file
        # that is not a trace: one-line diagnostic, defined exit code.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
