"""Reader CLI: ``python -m repro.obs summarize|diff``.

``summarize TRACE.jsonl`` prints a per-kind/per-phase report and exits
0; ``diff A.jsonl B.jsonl`` exits 0 when the traces are bit-identical
and 1 with a divergence report when they are not (the CI determinism
gate is literally this command).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.obs.events import TraceFormatError
from repro.obs.summarize import diff_traces, render_summary, summarize_events
from repro.obs.writer import iter_trace, read_trace, read_trace_meta

EXIT_OK = 0
EXIT_DIFFERS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Read repro.obs trace files (JSONL).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="print an aggregate report of one trace"
    )
    summarize.add_argument("trace", help="path to a .jsonl trace file")

    diff = commands.add_parser(
        "diff", help="compare two traces event-by-event"
    )
    diff.add_argument("left", help="first trace file")
    diff.add_argument("right", help="second trace file")
    diff.add_argument(
        "--max-report",
        type=int,
        default=10,
        help="stop after this many reported differences (default: 10)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            with open(args.trace, "r", encoding="utf-8") as handle:
                summary = summarize_events(iter_trace(handle))
            print(render_summary(summary, read_trace_meta(args.trace)))
            return EXIT_OK
        differences = diff_traces(
            read_trace(args.left),
            read_trace(args.right),
            max_report=args.max_report,
        )
        if not differences:
            print("traces are identical")
            return EXIT_OK
        for line in differences:
            print(line)
        return EXIT_DIFFERS
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        # Reader closed early (e.g. `summarize trace | head`): not an
        # error.  Point stdout at devnull so the interpreter's exit
        # flush cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
