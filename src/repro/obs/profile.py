"""Deterministic search profiler: where did the budget go?

Folds a trace — a live :class:`~repro.obs.tracer.RecordingTracer` or a
JSONL file — into a method → phase → move-kind attribution tree.  Every
event is charged to the frame stack that was open when it was emitted
(the method from the enclosing ``run_start``, the open ``phase_*``
names, and a leaf for the event kind), and the *logical clock delta*
since the previous event of the same stream becomes that frame's
self-units.  Per-worker streams are folded independently and merged
into one tree, so the profile of a ``workers=N`` trace is byte-identical
to the ``workers=1`` profile of the same seed — the merge the
orchestrator performs is already deterministic, and this fold is a pure
function of the event sequence.

Three output forms, all deterministic:

* :func:`profile_report` — a plain JSON-able dict (the schema below);
* :func:`profile_json` — that dict serialized canonically (sorted keys,
  fixed separators), byte-stable across runs and worker counts;
* :func:`collapsed_stacks` — one ``frame;frame;leaf units`` line per
  tree path, the folded-stack format standard flamegraph tooling eats.

The profiler itself never reads the wall clock (detlint DET002 holds
over this module).  Wall-clock attribution is opt-in: pass the sidecar
mapping recorded by :mod:`repro.obs.wallclock` — the one sanctioned
clock boundary — and each node gains a ``wall_s`` column.  Without a
sidecar the report contains no timing information at all.

Forward compatibility: event kinds outside the documented vocabulary
are attributed to an ``other`` leaf (and counted per unknown kind in
the report header) instead of crashing, so this reader can profile
traces written by newer writers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs import events as ev
from repro.obs.events import TraceEvent

#: Leaf frame for event kinds outside :data:`repro.obs.events.EVENT_KINDS`.
OTHER_LEAF = "other"

#: Report schema version (bumped when the dict layout changes).
PROFILE_VERSION = 1

#: Event kinds that attribute to the open frame itself (no leaf): they
#: delimit frames rather than describe work inside one.
_STRUCTURAL_KINDS = frozenset(
    (ev.RUN_START, ev.RUN_END, ev.PHASE_START, ev.PHASE_END)
)


@dataclass
class ProfileNode:
    """One frame of the attribution tree (self-stats; children nested)."""

    name: str
    units: float = 0.0  # logical-clock units attributed to this frame
    events: int = 0  # events charged here
    improvement: float = 0.0  # total cost decrease over accepted moves
    moves: dict[str, int] = field(default_factory=dict)
    best_updates: int = 0
    wall_s: float | None = None  # only with a wallclock sidecar
    children: dict[str, "ProfileNode"] = field(default_factory=dict)

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name)
            self.children[name] = node
        return node

    @property
    def n_moves(self) -> int:
        return sum(self.moves.values())

    def total_units(self) -> float:
        return self.units + sum(
            child.total_units() for child in self.children.values()
        )


@dataclass
class SearchProfile:
    """A folded trace: the tree plus the run-level header quantities."""

    root: ProfileNode
    n_events: int = 0
    clock_span: float = 0.0
    methods: tuple[str, ...] = ()
    workers: tuple[int, ...] = ()
    worker_units: dict[str, float] = field(default_factory=dict)
    evaluations: int | None = None  # from the outermost run_end
    final_cost: float | None = None
    unknown_kinds: dict[str, int] = field(default_factory=dict)
    has_wall: bool = False


@dataclass
class _Stream:
    """Per-worker fold state (the merge interleaves worker streams)."""

    methods: list[str] = field(default_factory=list)
    phases: list[str] = field(default_factory=list)
    last_clock: float | None = None
    last_wall: float | None = None


def _leaf_name(event: TraceEvent) -> str | None:
    """The leaf frame for one event (None: charge the open frame)."""
    if event.kind in _STRUCTURAL_KINDS:
        return None
    if event.kind == ev.MOVE:
        return f"move:{event.data.get('outcome', 'unknown')}"
    if event.kind in ev.EVENT_KINDS:
        return event.kind
    return OTHER_LEAF


def profile_events(
    events: Iterable[TraceEvent],
    wall: Mapping[int, float] | None = None,
) -> SearchProfile:
    """Fold a stream of events into a :class:`SearchProfile` (streaming).

    ``wall`` maps event ``seq`` to elapsed wall seconds (the sidecar
    :mod:`repro.obs.wallclock` records); events without an entry simply
    contribute no wall time.  The fold itself never reads a clock.
    """
    profile = SearchProfile(root=ProfileNode("run"))
    streams: dict[int | None, _Stream] = {}
    methods_seen: list[str] = []
    workers_seen: set[int] = set()
    for event in events:
        profile.n_events += 1
        if event.clock > profile.clock_span:
            profile.clock_span = event.clock
        stream = streams.get(event.worker)
        if stream is None:
            stream = _Stream(last_clock=event.clock)
            streams[event.worker] = stream
        if event.worker is not None:
            workers_seen.add(event.worker)
        delta = event.clock - (
            stream.last_clock if stream.last_clock is not None else event.clock
        )
        if delta < 0.0:  # defensive: merged streams are monotone per worker
            delta = 0.0
        stream.last_clock = event.clock

        if event.kind == ev.RUN_START:
            method = str(event.data.get("method", "?"))
            stream.methods.append(method)
            if method not in methods_seen:
                methods_seen.append(method)
        elif event.kind == ev.RUN_END:
            cost = event.data.get("cost")
            evaluations = event.data.get("evaluations")
            profile.final_cost = float(cost) if cost is not None else None
            profile.evaluations = (
                int(evaluations) if evaluations is not None else None
            )
        if event.kind not in ev.EVENT_KINDS:
            profile.unknown_kinds[event.kind] = (
                profile.unknown_kinds.get(event.kind, 0) + 1
            )

        frames = [stream.methods[-1] if stream.methods else "?"]
        frames.extend(stream.phases)
        leaf = _leaf_name(event)
        if leaf is not None:
            frames.append(leaf)
        node = profile.root
        for frame in frames:
            node = node.child(frame)
        node.units += delta
        node.events += 1
        worker_key = "main" if event.worker is None else str(event.worker)
        profile.worker_units[worker_key] = (
            profile.worker_units.get(worker_key, 0.0) + delta
        )
        if wall is not None:
            stamp = wall.get(event.seq)
            if stamp is not None:
                if stream.last_wall is not None:
                    wall_delta = stamp - stream.last_wall
                    if wall_delta > 0.0:
                        node.wall_s = (node.wall_s or 0.0) + wall_delta
                        profile.has_wall = True
                stream.last_wall = stamp

        if event.kind == ev.MOVE:
            outcome = str(event.data.get("outcome", "unknown"))
            node.moves[outcome] = node.moves.get(outcome, 0) + 1
            move_delta = event.data.get("delta")
            if move_delta is not None and float(move_delta) < 0.0:
                node.improvement += -float(move_delta)
        elif event.kind == ev.BEST:
            node.best_updates += 1
        elif event.kind == ev.PHASE_START:
            stream.phases.append(str(event.data.get("phase", "?")))
        elif event.kind == ev.PHASE_END:
            name = str(event.data.get("phase", "?"))
            if name in stream.phases:
                while stream.phases and stream.phases.pop() != name:
                    pass
        elif event.kind == ev.RUN_END:
            if len(stream.methods) > 0:
                stream.methods.pop()
    profile.methods = tuple(methods_seen)
    profile.workers = tuple(sorted(workers_seen))
    return profile


def _node_report(node: ProfileNode) -> dict[str, Any]:
    accepted = node.moves.get(ev.ACCEPTED, 0)
    total_moves = node.n_moves
    report: dict[str, Any] = {
        "name": node.name,
        "units": node.units,
        "total_units": node.total_units(),
        "events": node.events,
        "evaluations": total_moves,
        "improvement": node.improvement,
        "moves": {key: node.moves[key] for key in sorted(node.moves)},
        "best_updates": node.best_updates,
    }
    if total_moves:
        report["acceptance"] = accepted / total_moves
    if node.wall_s is not None:
        report["wall_s"] = node.wall_s
    report["children"] = [
        _node_report(node.children[name]) for name in sorted(node.children)
    ]
    return report


def profile_report(profile: SearchProfile) -> dict[str, Any]:
    """The profile as a plain JSON-able dict (schema version 1)."""
    return {
        "profiler": "repro.obs.profile",
        "version": PROFILE_VERSION,
        "events": profile.n_events,
        "clock_span": profile.clock_span,
        "methods": list(profile.methods),
        "workers": list(profile.workers),
        "worker_units": {
            key: profile.worker_units[key]
            for key in sorted(profile.worker_units)
        },
        "evaluations": profile.evaluations,
        "final_cost": profile.final_cost,
        "unknown_kinds": {
            key: profile.unknown_kinds[key]
            for key in sorted(profile.unknown_kinds)
        },
        "tree": _node_report(profile.root),
    }


def profile_json(profile: SearchProfile) -> str:
    """The report serialized canonically: byte-stable for equal traces."""
    return (
        json.dumps(
            profile_report(profile),
            indent=2,
            sort_keys=True,
            separators=(",", ": "),
        )
        + "\n"
    )


def collapsed_stacks(report: Mapping[str, Any]) -> list[str]:
    """Folded-stack lines (``a;b;c units``) from a :func:`profile_report`.

    Works off the *report dict* (not the tree objects), so the collapsed
    output of a JSON report round-trips: parsing :func:`profile_json`
    and collapsing yields exactly these lines.  Values are self-units
    rounded to integers (the format flamegraph tools expect); frames
    with zero rounded self-units are omitted, as is conventional.
    """
    lines: list[str] = []

    def walk(node: Mapping[str, Any], prefix: list[str]) -> None:
        path = prefix + [str(node.get("name", "?"))]
        units = int(round(float(node.get("units", 0.0))))
        if units > 0 and len(path) > 1:  # skip the synthetic root frame
            lines.append(";".join(path[1:]) + f" {units}")
        for child in node.get("children", []):
            walk(child, path)

    walk(report.get("tree", {}), [])
    return sorted(lines)


def render_profile(profile: SearchProfile) -> str:
    """The human-readable attribution tree, one frame per line."""
    report = profile_report(profile)
    lines: list[str] = []
    methods = ", ".join(report["methods"]) or "?"
    lines.append(
        f"profile: {report['events']} events  "
        f"clock span: {report['clock_span']:g} units  methods: {methods}"
    )
    if report["workers"]:
        indices = report["workers"]
        lines.append(
            f"workers merged: {len(indices)} "
            f"(indices {indices[0]}..{indices[-1]})"
        )
    if report["unknown_kinds"]:
        described = ", ".join(
            f"{kind} x{count}"
            for kind, count in report["unknown_kinds"].items()
        )
        lines.append(f"unknown event kinds (bucketed as other): {described}")
    header = f"{'frame':<44} {'units':>10} {'evals':>7} {'accept':>7} {'improve':>12}"
    if profile.has_wall:
        header += f" {'wall_s':>9}"
    lines.append(header)

    def walk(node: Mapping[str, Any], depth: int) -> None:
        if depth > 0:  # the synthetic root is the header line's job
            label = ("  " * (depth - 1)) + str(node["name"])
            acceptance = node.get("acceptance")
            accept = f"{acceptance:.1%}" if acceptance is not None else "-"
            row = (
                f"{label:<44} {node['units']:>10g} "
                f"{node['evaluations']:>7} {accept:>7} "
                f"{node['improvement']:>12.4g}"
            )
            if profile.has_wall:
                wall = node.get("wall_s")
                row += f" {wall:>9.4f}" if wall is not None else f" {'-':>9}"
            lines.append(row)
        for child in node["children"]:
            walk(child, depth + 1)

    walk(report["tree"], 0)
    if report["final_cost"] is not None:
        evals = (
            f"  evaluations: {report['evaluations']}"
            if report["evaluations"] is not None
            else ""
        )
        lines.append(f"final cost: {report['final_cost']:g}{evals}")
    return "\n".join(lines)
