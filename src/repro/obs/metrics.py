"""The metrics registry: counters, gauges, and histograms.

Metrics aggregate what events enumerate: the trace answers "what
happened, in order", the registry answers "how much, in total".  Both
are deterministic — a metric is only ever derived from logical
quantities (evaluation counts, work units, costs), never from wall
time, so two runs of the same seed snapshot identical registries.

Catalog of the names the instrumented stack emits (see
``docs/observability.md`` for the full table):

counters
    ``evaluations`` (plans priced), ``joins_walked`` (join-cost steps
    actually computed), ``joins_charged`` (steps the budget paid for),
    ``pruned`` (candidates abandoned by the upper bound), ``best_updates``,
    ``moves_accepted`` / ``moves_rejected`` / ``moves_pruned``,
    ``sa_chains``, ``restarts``, ``bounds_published``, ``faults``,
    ``degraded_runs``.
gauges
    ``best_cost``, ``budget_limit``, ``budget_spent``,
    ``worker.<k>.units`` (per-restart share actually consumed).
histograms
    ``sa_acceptance_ratio`` (one observation per completed temperature
    chain — the paper's acceptance-per-plateau view),
    ``improvement_depth`` (accepted moves per II descent).

Derived ratios (prune rate, prefix-cache hit rate, acceptance ratio)
are computed by readers from the counters, so the hot path only ever
increments.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

#: Histogram bucket upper bounds: powers of ten from 1e-3 up, plus +inf.
#: Fixed (not adaptive) so merged histograms from different workers are
#: always bucket-compatible and the snapshot is schedule-independent.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    10.0**exponent for exponent in range(-3, 13)
) + (math.inf,)


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max sidecars."""

    __slots__ = ("buckets", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: tuple[float, ...] = tuple(buckets)
        if not self.buckets or self.buckets[-1] != math.inf:
            raise ValueError("histogram buckets must end with +inf")
        self.counts: list[int] = [0] * len(self.buckets)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def to_json_dict(self) -> dict[str, Any]:
        populated = {
            _bound_label(bound): count
            for bound, count in zip(self.buckets, self.counts)
            if count
        }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": populated,
        }


def _bound_label(bound: float) -> str:
    return "+inf" if math.isinf(bound) else f"{bound:g}"


class Metrics:
    """A deterministic registry of named counters, gauges, histograms.

    Registration is implicit (first touch creates the series); snapshots
    sort every name, so the serialized form never depends on touch
    order.  ``merge`` folds another registry in: counters add, gauges
    take the other side's value (last-writer-wins in merge order, which
    the orchestrator keeps deterministic by merging in restart index
    order), histograms merge bucket-wise.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def merge(self, other: "Metrics") -> None:
        for name in sorted(other.counters):
            self.inc(name, other.counters[name])
        for name in sorted(other.gauges):
            self.gauges[name] = other.gauges[name]
        for name in sorted(other.histograms):
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(
                    other.histograms[name].buckets
                )
            histogram.merge(other.histograms[name])

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe snapshot with sorted, stable key order."""
        return {
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name] for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].to_json_dict()
                for name in sorted(self.histograms)
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "Metrics":
        """Rebuild counters/gauges from a snapshot (histograms summarized).

        Used to fold pool-worker snapshots (which cross a process
        boundary as JSON-safe dicts) back into the parent registry.
        Histogram bucket counts are restored exactly; min/max/sum come
        from the sidecars.
        """
        metrics = cls()
        for name, value in sorted(dict(snapshot.get("counters", {})).items()):
            metrics.counters[name] = float(value)
        for name, value in sorted(dict(snapshot.get("gauges", {})).items()):
            metrics.gauges[name] = float(value)
        for name, data in sorted(dict(snapshot.get("histograms", {})).items()):
            histogram = Histogram()
            labels = {_bound_label(b): i for i, b in enumerate(histogram.buckets)}
            for label, count in dict(data.get("buckets", {})).items():
                if label not in labels:
                    raise ValueError(
                        f"histogram {name!r} bucket {label!r} does not match "
                        "the registry's fixed bucket bounds"
                    )
                histogram.counts[labels[label]] = int(count)
            histogram.count = int(data.get("count", 0))
            histogram.total = float(data.get("sum", 0.0))
            if histogram.count:
                histogram.minimum = float(data["min"])
                histogram.maximum = float(data["max"])
            metrics.histograms[name] = histogram
        return metrics
