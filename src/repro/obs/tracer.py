"""Tracers: the no-op default and the recording backend.

Design constraints, in priority order:

1. **Determinism-safe by construction.**  A tracer may only *observe*.
   It never charges the budget, never draws from an RNG, never reads
   the wall clock, and never influences control flow — so a traced run
   is bit-identical to an untraced one, and the trace itself is a pure
   function of the run's seed (detlint's DET001/DET002 hold over this
   package; ``[tool.detlint.rules.DET002].verified_clean`` registers it
   as a module set that must never read the clock).
2. **Free when off.**  The default backend is :data:`NULL_TRACER`, and
   every instrumentation site is guarded by one attribute check
   (``if tracer.enabled:``); the payload dict is only built when a
   recording backend is installed.  ``benchmarks/test_perf_obs.py``
   holds this to <2% on the incremental-evaluation hot path.
3. **Mergeable.**  Worker-local tracers cross the process boundary as
   plain event tuples and metric snapshots; the orchestrator merges
   them in restart-index order (never completion order).

Usage::

    tracer = RecordingTracer()
    result = optimize(query, method="II", trace=tracer)
    write_trace(tracer.events, "run.jsonl")        # or optimize(trace="run.jsonl")
    tracer.metrics.snapshot()                       # counters/gauges/histograms
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.events import TraceEvent
from repro.obs.metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.budget import Budget


class Tracer:
    """The no-op base tracer: every hook is one attribute check away.

    ``enabled`` is a *class* attribute, so the hot-path guard
    ``if tracer.enabled:`` costs a single attribute load on the
    default backend and the interpreter never builds event payloads.
    All mutating methods are no-ops; subclasses that record set
    ``enabled = True`` and override them.
    """

    enabled = False

    #: Shared discard registry: never written (all writes are guarded by
    #: ``enabled`` checks), present so unguarded reads cannot crash.
    metrics = Metrics()

    def bind_clock(self, budget: "Budget | None") -> None:
        """Adopt ``budget.spent`` as the logical clock (no-op here)."""

    def emit(self, kind: str, /, **data: Any) -> None:
        """Record one event (no-op here).

        ``kind`` is positional-only so payload keys named ``kind`` (as
        the ``bound`` events use) never collide with it.
        """

    def phase_start(self, name: str, /, **data: Any) -> None:
        """Convenience: emit a ``phase_start`` event (no-op here)."""

    def phase_end(self, name: str, /, **data: Any) -> None:
        """Convenience: emit a ``phase_end`` event (no-op here)."""


#: The process-wide default backend.  Instrumented code paths hold a
#: reference to this singleton unless a recording tracer is installed.
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Collects events in memory and aggregates metrics.

    The logical clock reads ``Budget.spent`` of whichever budget is
    currently bound (the optimizer binds its own as the run starts);
    events emitted before any budget exists are stamped at clock 0.0.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.metrics = Metrics()
        self._budget: "Budget | None" = None
        self._seq = 0

    def bind_clock(self, budget: "Budget | None") -> None:
        self._budget = budget

    @property
    def clock(self) -> float:
        budget = self._budget
        return budget.spent if budget is not None else 0.0

    def emit(self, kind: str, /, **data: Any) -> None:
        self.events.append(
            TraceEvent(seq=self._seq, clock=self.clock, kind=kind, data=data)
        )
        self._seq += 1

    def phase_start(self, name: str, /, **data: Any) -> None:
        from repro.obs import events as _events

        self.emit(_events.PHASE_START, phase=name, **data)

    def phase_end(self, name: str, /, **data: Any) -> None:
        from repro.obs import events as _events

        self.emit(_events.PHASE_END, phase=name, **data)

    def extend_merged(
        self,
        events: list[TraceEvent],
        clock_offset: float,
        worker: int,
    ) -> None:
        """Append a worker-local trace, restamped into this tracer's scope.

        Events keep their relative order; sequence numbers continue this
        tracer's own counter, clocks shift by ``clock_offset`` (the units
        spent before the restart, mirroring the merged trajectory), and
        every event is attributed to restart ``worker``.
        """
        for event in events:
            self.events.append(
                event.restamped(self._seq, clock_offset, worker)
            )
            self._seq += 1


def as_tracer(trace: "Tracer | str | None") -> tuple[Tracer, str | None]:
    """Resolve ``optimize(trace=...)``'s argument.

    ``None`` keeps the no-op backend; a :class:`Tracer` is used as-is
    (no sink); a string/path enables recording and names the JSONL file
    the caller should flush the trace to when the run completes.
    """
    if trace is None:
        return NULL_TRACER, None
    if isinstance(trace, Tracer):
        return trace, None
    path = str(getattr(trace, "__fspath__", lambda: trace)())
    return RecordingTracer(), path
