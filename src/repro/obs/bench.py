"""Benchmark history ledger: record ``BENCH_*.json``, watch for trends.

The perf benchmarks each write one free-form ``BENCH_*.json`` file under
``benchmarks/results/`` — useful snapshots, but shapeless for trend
tracking.  This module normalizes them into an append-only JSONL ledger
(``benchmarks/results/HISTORY.jsonl``, the perf source of truth named by
``docs/performance.md``):

* :func:`record` flattens each file's numeric leaves into dotted metric
  paths (``sizes.0.modes.full.seconds``) and appends one canonical JSON
  line per file, keyed by the benchmark name;
* :func:`check` compares the newest entry per benchmark against a
  trailing window of its predecessors with noise-aware thresholds
  (the allowed deviation widens with the window's own relative spread)
  and reports regressions — ``repro bench check`` exits nonzero on any,
  so CI can gate on it.

Only metrics whose *direction* is unambiguous from their name gate
(``seconds``/``overhead`` lower-better, ``speedup``/``per_sec``
higher-better); everything else is recorded for the archaeologists but
never flags.  Nothing here reads a clock or draws randomness: given the
same inputs, ``record`` appends identical bytes and ``check`` renders an
identical report.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

#: Default ledger location, relative to the repository root.
DEFAULT_HISTORY = os.path.join("benchmarks", "results", "HISTORY.jsonl")

#: Ledger entry schema version.
HISTORY_VERSION = 1

#: Gating defaults: window length, relative threshold, entries required.
DEFAULT_WINDOW = 5
DEFAULT_THRESHOLD = 0.5
DEFAULT_MIN_HISTORY = 2


class BenchFormatError(ValueError):
    """A benchmark JSON file or ledger line is malformed."""


def flatten_metrics(payload: Any, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested JSON value, keyed by dotted path.

    Booleans and strings are skipped (they are labels, not measurements);
    list elements are keyed by index.  Keys are visited in sorted order,
    so the result's insertion order is canonical.
    """
    flat: dict[str, float] = {}
    if isinstance(payload, bool):
        return flat
    if isinstance(payload, (int, float)):
        flat[prefix or "value"] = float(payload)
        return flat
    if isinstance(payload, Mapping):
        for key in sorted(payload, key=str):
            child = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(payload[key], child))
        return flat
    if isinstance(payload, (list, tuple)):
        for index, item in enumerate(payload):
            child = f"{prefix}.{index}" if prefix else str(index)
            flat.update(flatten_metrics(item, child))
    return flat


def benchmark_name(source: str, payload: Mapping[str, Any]) -> str:
    """The ledger key: the file's ``benchmark`` field, else its stem."""
    name = payload.get("benchmark")
    if isinstance(name, str) and name:
        return name
    stem = os.path.splitext(os.path.basename(source))[0]
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_") :]
    return stem.lower()


def normalize_bench_file(path: str) -> dict[str, Any]:
    """One ledger entry (un-serialized) for one ``BENCH_*.json`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise BenchFormatError(f"{path}: not valid JSON: {exc}")
    if not isinstance(payload, Mapping):
        raise BenchFormatError(f"{path}: expected a JSON object")
    return {
        "version": HISTORY_VERSION,
        "benchmark": benchmark_name(path, payload),
        "source": os.path.basename(path),
        "metrics": flatten_metrics(payload),
    }


def _dump_entry(entry: Mapping[str, Any]) -> str:
    return json.dumps(entry, separators=(",", ":"), sort_keys=True)


def record(
    paths: Sequence[str],
    history_path: str = DEFAULT_HISTORY,
    note: str | None = None,
) -> list[dict[str, Any]]:
    """Append one normalized entry per file; returns the entries.

    Files are processed in sorted-basename order so one invocation over
    a glob appends deterministic bytes.  ``note`` (e.g. a commit id or
    ``"backfill"``) rides on every entry as run metadata.
    """
    entries: list[dict[str, Any]] = []
    for path in sorted(paths, key=os.path.basename):
        entry = normalize_bench_file(path)
        if note is not None:
            entry["note"] = note
        entries.append(entry)
    if entries:
        with open(history_path, "a", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(_dump_entry(entry) + "\n")
    return entries


def read_history(history_path: str) -> list[dict[str, Any]]:
    """All ledger entries, in append order."""
    entries: list[dict[str, Any]] = []
    with open(history_path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise BenchFormatError(
                    f"{history_path}:{number}: not valid JSON: {exc}"
                )
            if not isinstance(entry, dict) or "benchmark" not in entry:
                raise BenchFormatError(
                    f"{history_path}:{number}: not a ledger entry"
                )
            entries.append(entry)
    return entries


def metric_direction(path: str) -> str | None:
    """``"lower"``/``"higher"`` when the metric's good direction is clear.

    Only clearly-named metrics gate; ambiguous ones return ``None`` and
    are recorded without ever flagging.
    """
    leaf = path.rsplit(".", 1)[-1]
    if "speedup" in leaf or leaf.endswith("per_sec") or "throughput" in leaf:
        return "higher"
    if leaf.startswith("seconds") or leaf.endswith("seconds"):
        return "lower"
    if "overhead" in leaf:
        return "lower"
    return None


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class BenchDelta:
    """One gated metric's newest value against its trailing baseline."""

    benchmark: str
    metric: str
    direction: str
    value: float
    baseline: float  # median of the trailing window
    tolerance: float  # relative deviation allowed (threshold + spread)
    regressed: bool

    @property
    def ratio(self) -> float:
        return self.value / self.baseline if self.baseline else float("inf")


@dataclass
class BenchCheckReport:
    """Everything ``repro bench check`` prints (and exits on)."""

    checked: list[BenchDelta] = field(default_factory=list)
    skipped: dict[str, str] = field(default_factory=dict)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [delta for delta in self.checked if delta.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def check(
    history_path: str = DEFAULT_HISTORY,
    window: int = DEFAULT_WINDOW,
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> BenchCheckReport:
    """Newest entry per benchmark vs the trailing window before it.

    For each gated metric the baseline is the window's median and the
    allowed relative deviation is ``threshold`` plus the window's own
    relative spread ``(max - min) / |median|`` — a benchmark that
    historically wobbles 30% must move further than one that holds
    steady.  Metrics with a non-positive baseline never gate (ratios
    are meaningless there).
    """
    report = BenchCheckReport()
    grouped: dict[str, list[dict[str, Any]]] = {}
    for entry in read_history(history_path):
        grouped.setdefault(str(entry["benchmark"]), []).append(entry)
    for name in sorted(grouped):
        entries = grouped[name]
        if len(entries) < max(min_history, 2):
            report.skipped[name] = (
                f"only {len(entries)} entr"
                f"{'y' if len(entries) == 1 else 'ies'} recorded"
            )
            continue
        newest = entries[-1]
        trailing = entries[max(0, len(entries) - 1 - window) : -1]
        newest_metrics = newest.get("metrics", {})
        gated = 0
        for metric in sorted(newest_metrics):
            direction = metric_direction(metric)
            if direction is None:
                continue
            value = float(newest_metrics[metric])
            history_values = [
                float(entry["metrics"][metric])
                for entry in trailing
                if metric in entry.get("metrics", {})
            ]
            if not history_values:
                continue
            baseline = _median(history_values)
            if baseline <= 0.0:
                continue
            spread = (max(history_values) - min(history_values)) / baseline
            tolerance = threshold + spread
            if direction == "lower":
                regressed = value > baseline * (1.0 + tolerance)
            else:
                regressed = value < baseline / (1.0 + tolerance)
            gated += 1
            report.checked.append(
                BenchDelta(
                    benchmark=name,
                    metric=metric,
                    direction=direction,
                    value=value,
                    baseline=baseline,
                    tolerance=tolerance,
                    regressed=regressed,
                )
            )
        if not gated:
            report.skipped[name] = "no gateable metrics in common"
    return report


def check_report_dict(report: BenchCheckReport) -> dict[str, Any]:
    """The check outcome as a plain JSON-able dict."""
    return {
        "ok": report.ok,
        "checked": len(report.checked),
        "regressions": [
            {
                "benchmark": delta.benchmark,
                "metric": delta.metric,
                "direction": delta.direction,
                "value": delta.value,
                "baseline": delta.baseline,
                "ratio": delta.ratio,
                "tolerance": delta.tolerance,
            }
            for delta in report.regressions
        ],
        "skipped": dict(report.skipped),
    }


def render_check(report: BenchCheckReport) -> str:
    """The human-readable ``bench check`` report."""
    lines: list[str] = []
    benchmarks = sorted({delta.benchmark for delta in report.checked})
    lines.append(
        f"bench check: {len(report.checked)} metric(s) across "
        f"{len(benchmarks)} benchmark(s), "
        f"{len(report.regressions)} regression(s)"
    )
    for delta in report.regressions:
        arrow = "above" if delta.direction == "lower" else "below"
        lines.append(
            f"  REGRESSION {delta.benchmark} :: {delta.metric} = "
            f"{delta.value:g} is {arrow} baseline {delta.baseline:g} "
            f"(ratio {delta.ratio:.3f}, tolerance ±{delta.tolerance:.0%})"
        )
    for name in sorted(report.skipped):
        lines.append(f"  skipped {name}: {report.skipped[name]}")
    return "\n".join(lines)
