"""The trace event schema: what one :class:`TraceEvent` may say.

A trace is an ordered sequence of structured events describing one
optimizer run's *search dynamics* — the quantities the paper's
experimental sections reason about (acceptance rates under the SA
schedule, II restart convergence, cost-evaluation counts) but the
result object cannot carry.

Determinism contract
--------------------
Events are stamped with two clocks, **neither of which is the wall
clock**:

``seq``
    A monotonic per-tracer sequence number (0, 1, 2, ...).  Total order
    of emission within one tracer.
``clock``
    The logical budget clock — ``Budget.spent`` at emission time (work
    units, see :mod:`repro.core.budget`).  Comparable across runs,
    machines, and worker counts.

Because no event reads ambient state (wall clock, OS entropy, process
ids), the trace of a seeded run is itself a pure function of the seed:
two runs of the same configuration produce byte-identical traces, and a
traced run is bit-identical to an untraced one (tracing only observes;
it never charges the budget, draws from an RNG, or alters control
flow).  ``python -m repro.obs diff`` builds on exactly this property.

Event kinds
-----------
=================  ======================================================
``run_start``      one optimizer invocation begins (method, sizes, seed)
``run_end``        the invocation's outcome (cost, units, evaluations)
``phase_start``    a named phase of a method begins (e.g. ``anneal``)
``phase_end``      that phase ends
``move``           a candidate move was priced: ``outcome`` is one of
                   ``accepted`` / ``rejected`` / ``pruned``
``best``           the evaluator recorded a new best cost
``chain``          one completed SA temperature chain (temperature,
                   acceptance ratio, chain index)
``restart``        a multi-start restart boundary (start index)
``bound``          a trusted bound was published (pre-pass floor,
                   shared-bound publication, early-stop target)
``fault``          a failure was observed (mirrors ``FailureRecord``)
``degraded``       a resilient run returned a degraded result
``perturb``        an ErrorModel perturbed a catalog (q, seed, draws)
``regret``         a robustness-harness trial's regret was measured
=================  ======================================================

``worker`` attributes an event to the orchestrator restart that emitted
it (``None`` for single-trajectory runs and parent-emitted events); the
deterministic merge assigns it, never the worker process itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

# Event kinds (the closed vocabulary; summarize groups by these).
RUN_START = "run_start"
RUN_END = "run_end"
PHASE_START = "phase_start"
PHASE_END = "phase_end"
MOVE = "move"
BEST = "best"
CHAIN = "chain"
RESTART = "restart"
BOUND = "bound"
FAULT = "fault"
DEGRADED = "degraded"
PERTURB = "perturb"
REGRET = "regret"

#: Every kind a conforming trace may contain, in documentation order.
EVENT_KINDS: tuple[str, ...] = (
    RUN_START,
    RUN_END,
    PHASE_START,
    PHASE_END,
    MOVE,
    BEST,
    CHAIN,
    RESTART,
    BOUND,
    FAULT,
    DEGRADED,
    PERTURB,
    REGRET,
)

#: ``move`` outcomes.
ACCEPTED = "accepted"
REJECTED = "rejected"
PRUNED = "pruned"
MOVE_OUTCOMES: tuple[str, ...] = (ACCEPTED, REJECTED, PRUNED)


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation, stamped with the logical clocks only."""

    seq: int
    clock: float
    kind: str
    data: Mapping[str, Any] = field(default_factory=dict)
    worker: int | None = None

    def restamped(
        self,
        seq: int,
        clock_offset: float = 0.0,
        worker: int | None = None,
    ) -> "TraceEvent":
        """A merge-restamped copy: new ``seq``, shifted clock, attribution.

        The orchestrator's deterministic merge lays worker-local traces
        end to end in restart-index order; each event keeps its payload
        but gets a parent-scope sequence number, a clock offset equal to
        the units spent before its restart (the same offset the merged
        trajectory uses), and the restart index as ``worker``.
        """
        return TraceEvent(
            seq=seq,
            clock=self.clock + clock_offset,
            kind=self.kind,
            data=self.data,
            worker=self.worker if worker is None else worker,
        )

    def to_json_dict(self) -> dict[str, Any]:
        """A JSON-safe dict with stable key order (writer format)."""
        record: dict[str, Any] = {
            "seq": self.seq,
            "clock": self.clock,
            "kind": self.kind,
        }
        if self.worker is not None:
            record["worker"] = self.worker
        if self.data:
            record["data"] = dict(self.data)
        return record

    @classmethod
    def from_json_dict(cls, record: Mapping[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_json_dict` (raises on malformed records)."""
        try:
            return cls(
                seq=int(record["seq"]),
                clock=float(record["clock"]),
                kind=str(record["kind"]),
                data=dict(record.get("data", {})),
                worker=(
                    int(record["worker"])
                    if record.get("worker") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace record {record!r}: {exc}")


class TraceFormatError(ValueError):
    """A serialized trace does not conform to the event schema."""
