"""Wall-clock sidecar: the one sanctioned clock boundary in ``repro.obs``.

The trace layer's determinism contract forbids wall-clock reads — events
are stamped with the logical budget clock only, so traces are pure
functions of the seed (``[tool.detlint.rules.DET002].verified_clean``
registers the package).  This module is the deliberate, narrow
exception: it records wall timestamps *beside* the trace, never inside
it, and is therefore listed under ``[tool.detlint.rules.DET002].allow``
(mirrored in ``repro.analysis.config.DEFAULT_TOOL_TABLE``).

:class:`WallClockTracer` subclasses ``RecordingTracer`` and stamps
``time.perf_counter()`` into a side table keyed by event ``seq`` as each
event is emitted.  The event stream itself is untouched, so the written
trace stays byte-identical to a plain recording of the same seed, and
every determinism gate (traced ≡ untraced, workers=N ≡ workers=1)
holds with the sidecar active.  The profiler folds the sidecar into an
opt-in ``wall_s`` column (``repro obs profile --wall``); without it no
repro.obs output contains timing information.

Sidecar format (``TRACE.jsonl.wall``)::

    {"kind": "wall_sidecar", "version": 1, "wall": {"0": 0.0, "1": 0.0013, ...}}
"""

from __future__ import annotations

import json
import time
from typing import Any, Mapping

from repro.obs.events import TraceFormatError
from repro.obs.tracer import RecordingTracer

#: Sidecar format version.
WALL_VERSION = 1

_SIDECAR_KIND = "wall_sidecar"

#: Suffix appended to the trace path to name its sidecar.
SIDECAR_SUFFIX = ".wall"


def sidecar_path(trace_path: str) -> str:
    """The conventional sidecar filename for one trace file."""
    return trace_path + SIDECAR_SUFFIX


class WallClockTracer(RecordingTracer):
    """A recording tracer that also keeps wall timestamps per event.

    The timestamps live in :attr:`wall` (seq → seconds since the tracer
    was created) and never enter the event stream: ``self.events`` is
    bit-identical to what a plain :class:`RecordingTracer` records for
    the same run.
    """

    def __init__(self) -> None:
        super().__init__()
        self.wall: dict[int, float] = {}
        self._wall_start = time.perf_counter()

    def emit(self, kind: str, /, **data: Any) -> None:
        self.wall[self._seq] = time.perf_counter() - self._wall_start
        super().emit(kind, **data)


def write_wall_sidecar(wall: Mapping[int, float], path: str) -> None:
    """Persist a seq → seconds table next to its trace."""
    record = {
        "kind": _SIDECAR_KIND,
        "version": WALL_VERSION,
        "wall": {str(seq): wall[seq] for seq in sorted(wall)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, separators=(",", ":"), sort_keys=True)
        handle.write("\n")


def read_wall_sidecar(path: str) -> dict[int, float]:
    """Load a sidecar written by :func:`write_wall_sidecar`."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if (
        not isinstance(record, dict)
        or record.get("kind") != _SIDECAR_KIND
        or not isinstance(record.get("wall"), dict)
    ):
        raise TraceFormatError(f"not a wall sidecar file: {path}")
    if record.get("version") != WALL_VERSION:
        raise TraceFormatError(
            f"unsupported wall sidecar version {record.get('version')!r}"
        )
    try:
        return {
            int(seq): float(value) for seq, value in record["wall"].items()
        }
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed wall sidecar {path}: {exc}")
