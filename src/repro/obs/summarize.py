"""Trace readers: the ``summarize`` table and the ``diff`` comparator.

Pure consumers of the JSONL format :mod:`repro.obs.writer` emits —
nothing here imports the optimizer, so the reader CLI works on trace
files shipped from elsewhere.

Forward compatibility: event kinds outside the documented vocabulary
are counted under an ``other`` bucket (with a per-kind breakdown in
:attr:`TraceSummary.unknown_kinds`) rather than dropped or crashed on,
so this reader can summarize traces written by newer writers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.obs import events as ev
from repro.obs.events import TraceEvent

#: Bucket name unknown event kinds are counted under.
OTHER_BUCKET = "other"


@dataclass
class TraceSummary:
    """Aggregates one trace into the quantities ``summarize`` prints."""

    n_events: int = 0
    kinds: dict[str, int] = field(default_factory=dict)
    move_outcomes: dict[str, int] = field(default_factory=dict)
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    chains: int = 0
    acceptance_sum: float = 0.0
    restarts: int = 0
    workers: set[int] = field(default_factory=set)
    bounds: int = 0
    faults: int = 0
    degraded: int = 0
    best_updates: int = 0
    final_cost: float | None = None
    final_units: float | None = None
    run_meta: dict[str, Any] = field(default_factory=dict)
    clock_span: float = 0.0
    #: Per-kind counts of events outside the documented vocabulary
    #: (their total also appears in ``kinds`` under ``other``).
    unknown_kinds: dict[str, int] = field(default_factory=dict)

    @property
    def mean_acceptance(self) -> float:
        return self.acceptance_sum / self.chains if self.chains else 0.0


def summarize_events(events: Iterable[TraceEvent]) -> TraceSummary:
    """Fold a stream of events into a :class:`TraceSummary` (streaming)."""
    summary = TraceSummary()
    open_phases: dict[tuple[int | None, str], float] = {}
    for event in events:
        summary.n_events += 1
        if event.kind in ev.EVENT_KINDS:
            bucket = event.kind
        else:
            bucket = OTHER_BUCKET
            summary.unknown_kinds[event.kind] = (
                summary.unknown_kinds.get(event.kind, 0) + 1
            )
        summary.kinds[bucket] = summary.kinds.get(bucket, 0) + 1
        if event.clock > summary.clock_span:
            summary.clock_span = event.clock
        if event.worker is not None:
            summary.workers.add(event.worker)
        if event.kind == ev.RUN_START:
            summary.run_meta = dict(event.data)
        elif event.kind == ev.RUN_END:
            cost = event.data.get("cost")
            units = event.data.get("units")
            summary.final_cost = float(cost) if cost is not None else None
            summary.final_units = float(units) if units is not None else None
        elif event.kind == ev.MOVE:
            outcome = str(event.data.get("outcome", "unknown"))
            summary.move_outcomes[outcome] = (
                summary.move_outcomes.get(outcome, 0) + 1
            )
        elif event.kind == ev.BEST:
            summary.best_updates += 1
        elif event.kind == ev.CHAIN:
            summary.chains += 1
            summary.acceptance_sum += float(event.data.get("acceptance", 0.0))
        elif event.kind == ev.RESTART:
            summary.restarts += 1
        elif event.kind == ev.BOUND:
            summary.bounds += 1
        elif event.kind == ev.FAULT:
            summary.faults += 1
        elif event.kind == ev.DEGRADED:
            summary.degraded += 1
        elif event.kind == ev.PHASE_START:
            key = (event.worker, str(event.data.get("phase", "?")))
            open_phases[key] = event.clock
        elif event.kind == ev.PHASE_END:
            key = (event.worker, str(event.data.get("phase", "?")))
            started = open_phases.pop(key, None)
            stats = summary.phases.setdefault(
                key[1], {"count": 0.0, "units": 0.0}
            )
            stats["count"] += 1
            if started is not None:
                stats["units"] += event.clock - started
    return summary


def render_summary(
    summary: TraceSummary, meta: Mapping[str, Any] | None = None
) -> str:
    """The human-readable ``summarize`` report, as one string."""
    lines: list[str] = []
    header = dict(meta or {})
    header.update(summary.run_meta)
    if header:
        described = ", ".join(
            f"{key}={header[key]}" for key in sorted(header)
        )
        lines.append(f"run: {described}")
    lines.append(
        f"events: {summary.n_events}  "
        f"clock span: {summary.clock_span:g} units"
    )
    if summary.kinds:
        ordered = [k for k in ev.EVENT_KINDS if k in summary.kinds]
        ordered += sorted(set(summary.kinds) - set(ev.EVENT_KINDS))
        lines.append("by kind:")
        for kind in ordered:
            lines.append(f"  {kind:<12} {summary.kinds[kind]}")
    if summary.unknown_kinds:
        described = ", ".join(
            f"{kind} x{summary.unknown_kinds[kind]}"
            for kind in sorted(summary.unknown_kinds)
        )
        lines.append(f"unknown kinds (bucketed as other): {described}")
    total_moves = sum(summary.move_outcomes.values())
    if total_moves:
        lines.append(f"moves: {total_moves}")
        for outcome in sorted(summary.move_outcomes):
            count = summary.move_outcomes[outcome]
            lines.append(
                f"  {outcome:<12} {count} ({count / total_moves:.1%})"
            )
    if summary.chains:
        lines.append(
            f"sa chains: {summary.chains}  "
            f"mean acceptance: {summary.mean_acceptance:.3f}"
        )
    if summary.phases:
        lines.append("phases:")
        for name in sorted(summary.phases):
            stats = summary.phases[name]
            lines.append(
                f"  {name:<20} x{int(stats['count'])}  "
                f"{stats['units']:g} units"
            )
    if summary.workers:
        lines.append(
            f"restarts merged: {len(summary.workers)} "
            f"(indices {min(summary.workers)}..{max(summary.workers)})"
        )
    if summary.faults or summary.degraded:
        lines.append(
            f"faults: {summary.faults}  degraded runs: {summary.degraded}"
        )
    if summary.best_updates:
        lines.append(f"best-cost updates: {summary.best_updates}")
    if summary.final_cost is not None:
        units = (
            f"  units: {summary.final_units:g}"
            if summary.final_units is not None
            else ""
        )
        lines.append(f"final cost: {summary.final_cost:g}{units}")
    return "\n".join(lines)


def summary_report(
    summary: TraceSummary, meta: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """The summary as a plain JSON-able dict (``summarize --format json``)."""
    return {
        "events": summary.n_events,
        "clock_span": summary.clock_span,
        "run": {**dict(meta or {}), **summary.run_meta},
        "kinds": {kind: summary.kinds[kind] for kind in sorted(summary.kinds)},
        "unknown_kinds": {
            kind: summary.unknown_kinds[kind]
            for kind in sorted(summary.unknown_kinds)
        },
        "moves": {
            outcome: summary.move_outcomes[outcome]
            for outcome in sorted(summary.move_outcomes)
        },
        "chains": summary.chains,
        "mean_acceptance": summary.mean_acceptance,
        "phases": {
            name: dict(sorted(summary.phases[name].items()))
            for name in sorted(summary.phases)
        },
        "restarts": summary.restarts,
        "workers": sorted(summary.workers),
        "bounds": summary.bounds,
        "faults": summary.faults,
        "degraded": summary.degraded,
        "best_updates": summary.best_updates,
        "final_cost": summary.final_cost,
        "final_units": summary.final_units,
    }


def summary_json(
    summary: TraceSummary, meta: Mapping[str, Any] | None = None
) -> str:
    """Canonical serialization of :func:`summary_report` (byte-stable)."""
    return (
        json.dumps(
            summary_report(summary, meta),
            indent=2,
            sort_keys=True,
            separators=(",", ": "),
        )
        + "\n"
    )


def diff_traces(
    left: Sequence[TraceEvent],
    right: Sequence[TraceEvent],
    max_report: int = 10,
) -> list[str]:
    """Describe where two traces diverge (empty list == identical).

    Compares event-by-event on the full tuple (seq, clock, kind, worker,
    data) — the bit-identity the determinism contract promises for equal
    seeds, so *any* line here is a determinism violation worth a bug
    report.
    """
    differences: list[str] = []
    common = min(len(left), len(right))
    for index in range(common):
        if len(differences) >= max_report:
            differences.append("... (further differences suppressed)")
            return differences
        a, b = left[index], right[index]
        if a != b:
            differences.append(
                f"event {index}: "
                f"{a.kind}@{a.clock:g}{_worker_tag(a)} {dict(a.data)!r} != "
                f"{b.kind}@{b.clock:g}{_worker_tag(b)} {dict(b.data)!r}"
            )
    if len(left) != len(right):
        differences.append(
            f"length: {len(left)} events vs {len(right)} events"
        )
    return differences


def _worker_tag(event: TraceEvent) -> str:
    return f"/w{event.worker}" if event.worker is not None else ""
