"""Plan provenance: *why* did this plan win?

Reconstructs the incumbent lineage of one optimizer run from its trace:
every time the global best cost improved — a ``best`` event below the
running minimum, or a trusted ``bound`` pre-pass floor — one
:class:`IncumbentStep` records which method, phase, restart, and worker
produced the improvement and at what logical budget clock.  The chain
is a pure function of the event sequence, so it is byte-stable across
repeated same-seed runs and invariant to the worker count (the
orchestrator's merge already is).

Surfaced two ways:

* ``repro explain-trace RUN.jsonl`` renders the chain from a trace file;
* :func:`repro.core.optimizer.optimize` attaches the chain to
  ``OptimizationResult.provenance`` when tracing is on (the field is
  excluded from equality, so a traced result still compares equal to
  its untraced twin — tracing observes, never perturbs).

Traces that hold several runs (the robustness harness records many
``optimize`` calls into one tracer) are handled by slicing the last
balanced ``run_start``..``run_end`` span before folding, so the chain
always describes the most recent completed run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Sequence

from repro.obs import events as ev
from repro.obs.events import TraceEvent

#: Provenance schema version (bumped when the dict layout changes).
PROVENANCE_VERSION = 1

#: ``IncumbentStep.source`` values.
SOURCE_BEST = "best"
SOURCE_PREPASS = "prepass_floor"


@dataclass(frozen=True)
class IncumbentStep:
    """One improvement of the global incumbent."""

    seq: int
    clock: float
    cost: float
    source: str  # SOURCE_BEST or SOURCE_PREPASS
    method: str
    phase: str  # open phase stack joined with "/" ("-" when none)
    worker: int | None  # restart attribution from the merge
    restart: int | None  # last restart index seen on this stream
    improvement: float | None  # previous incumbent cost minus this one


@dataclass(frozen=True)
class PlanProvenance:
    """The full lineage: improvement chain plus run-level footer."""

    steps: tuple[IncumbentStep, ...] = ()
    final_cost: float | None = None
    final_units: float | None = None
    n_events: int = 0


@dataclass
class _Stream:
    methods: list[str] = field(default_factory=list)
    phases: list[str] = field(default_factory=list)
    restart: int | None = None


def events_for_last_run(
    events: Sequence[TraceEvent],
) -> Sequence[TraceEvent]:
    """The suffix holding the last balanced ``run_start``..``run_end``.

    Walks backward counting ``run_end`` (+1) against ``run_start`` (-1);
    the index where the balance reaches zero opens the most recent
    completed run (worker-local and component sub-runs nest and cancel).
    Returns the full sequence when no balanced span exists (e.g. a
    still-open run, or a trace with no run events at all).
    """
    depth = 0
    saw_end = False
    for index in range(len(events) - 1, -1, -1):
        kind = events[index].kind
        if kind == ev.RUN_END:
            depth += 1
            saw_end = True
        elif kind == ev.RUN_START:
            depth -= 1
            if saw_end and depth == 0:
                return events[index:]
    return events


def build_provenance(
    events: Sequence[TraceEvent], last_run_only: bool = True
) -> PlanProvenance:
    """Fold a trace into the incumbent lineage of its (last) run."""
    if last_run_only:
        events = events_for_last_run(events)
    streams: dict[int | None, _Stream] = {}
    steps: list[IncumbentStep] = []
    best_cost: float | None = None
    final_cost: float | None = None
    final_units: float | None = None
    n_events = 0
    for event in events:
        n_events += 1
        stream = streams.get(event.worker)
        if stream is None:
            stream = _Stream()
            streams[event.worker] = stream
        candidate: float | None = None
        source = SOURCE_BEST
        if event.kind == ev.RUN_START:
            stream.methods.append(str(event.data.get("method", "?")))
        elif event.kind == ev.RUN_END:
            cost = event.data.get("cost")
            units = event.data.get("units")
            final_cost = float(cost) if cost is not None else None
            final_units = float(units) if units is not None else None
            if stream.methods:
                stream.methods.pop()
        elif event.kind == ev.PHASE_START:
            stream.phases.append(str(event.data.get("phase", "?")))
        elif event.kind == ev.PHASE_END:
            name = str(event.data.get("phase", "?"))
            if name in stream.phases:
                while stream.phases and stream.phases.pop() != name:
                    pass
        elif event.kind == ev.RESTART:
            index = event.data.get("index")
            stream.restart = int(index) if index is not None else None
        elif event.kind == ev.BEST:
            cost = event.data.get("cost")
            candidate = float(cost) if cost is not None else None
        elif event.kind == ev.BOUND:
            if event.data.get("kind") == "prepass_floor":
                value = event.data.get("value")
                candidate = float(value) if value is not None else None
                source = SOURCE_PREPASS
        if candidate is not None and (
            best_cost is None or candidate < best_cost
        ):
            steps.append(
                IncumbentStep(
                    seq=event.seq,
                    clock=event.clock,
                    cost=candidate,
                    source=source,
                    method=stream.methods[-1] if stream.methods else "?",
                    phase="/".join(stream.phases) if stream.phases else "-",
                    worker=event.worker,
                    restart=stream.restart,
                    improvement=(
                        best_cost - candidate
                        if best_cost is not None
                        else None
                    ),
                )
            )
            best_cost = candidate
    return PlanProvenance(
        steps=tuple(steps),
        final_cost=final_cost,
        final_units=final_units,
        n_events=n_events,
    )


def provenance_report(provenance: PlanProvenance) -> dict[str, Any]:
    """The lineage as a plain JSON-able dict (schema version 1)."""
    return {
        "provenance": "repro.obs.provenance",
        "version": PROVENANCE_VERSION,
        "events": provenance.n_events,
        "final_cost": provenance.final_cost,
        "final_units": provenance.final_units,
        "steps": [asdict(step) for step in provenance.steps],
    }


def provenance_json(provenance: PlanProvenance) -> str:
    """The report serialized canonically: byte-stable for equal traces."""
    return (
        json.dumps(
            provenance_report(provenance),
            indent=2,
            sort_keys=True,
            separators=(",", ": "),
        )
        + "\n"
    )


def render_provenance(provenance: PlanProvenance) -> str:
    """The human-readable "why this plan" chain."""
    lines: list[str] = []
    count = len(provenance.steps)
    lines.append(f"plan provenance: {count} incumbent update(s)")
    for number, step in enumerate(provenance.steps, start=1):
        where = "main" if step.worker is None else f"restart {step.worker}"
        improved = (
            f" (-{step.improvement:g})" if step.improvement is not None else ""
        )
        origin = (
            "pre-pass floor"
            if step.source == SOURCE_PREPASS
            else f"method {step.method}, phase {step.phase}"
        )
        lines.append(
            f"  #{number} cost {step.cost:g}{improved} "
            f"at clock {step.clock:g} — {origin} [{where}]"
        )
    if provenance.final_cost is not None:
        units = (
            f" after {provenance.final_units:g} units"
            if provenance.final_units is not None
            else ""
        )
        lines.append(f"final: cost {provenance.final_cost:g}{units}")
    return "\n".join(lines)
