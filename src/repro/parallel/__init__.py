"""Process-pool parallel search with deterministic, serial-identical merges.

Public surface:

* :func:`~repro.parallel.orchestrator.multi_start_optimize` — the
  multi-start orchestrator behind ``optimize(..., workers=N)``.
* :func:`~repro.parallel.orchestrator.map_jobs` /
  :class:`~repro.parallel.orchestrator.OptimizeJob` — the generic
  fan-out used by the method-comparison and experiment paths.
* :class:`~repro.parallel.bound.SharedBound` — the cross-process
  monotone-min cost bound workers publish to.
"""

from repro.parallel.bound import SharedBound
from repro.parallel.orchestrator import (
    DEFAULT_RESTARTS,
    JobOutcome,
    OptimizeJob,
    ParallelReport,
    map_jobs,
    multi_start_optimize,
    run_job,
)

__all__ = [
    "DEFAULT_RESTARTS",
    "JobOutcome",
    "OptimizeJob",
    "ParallelReport",
    "SharedBound",
    "map_jobs",
    "multi_start_optimize",
    "run_job",
]
