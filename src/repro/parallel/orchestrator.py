"""Process-pool multi-start orchestration with deterministic merging.

The paper's combinatorial methods are embarrassingly parallel across
restarts: each restart is a pure function of its derived seed and budget
share.  This module fans restarts out to a process pool and merges their
results so that, **for any seed, ``workers=N`` returns an
``OptimizationResult`` bit-identical to ``workers=1``** — the invariant
the differential harness in ``tests/test_parallel_search.py`` enforces.

How the pieces keep that invariant while still sharing work globally:

Pre-pass floor (the deterministic shared bound)
    Before fanning out, the parent prices the deterministic spanning
    order (:func:`~repro.robustness.resilience.deterministic_fallback_order`)
    once.  Its cost ``F`` is threaded into every restart's evaluator as
    ``record_floor``: a start state that provably prices above ``F`` is
    skipped (its descent would begin above a plan the merge already
    holds), so every worker inherits the incremental evaluator's
    upper-bound pruning *globally* — and identically, because ``F`` does
    not depend on scheduling.

Live bound (:class:`~repro.parallel.bound.SharedBound`)
    Workers publish each restart's final cost to a cross-process
    monotone-min value.  It is read for monitoring/reporting, never
    consulted mid-restart: for acceptance-driven search the incumbent's
    cost is already the tightest sound pruning bound, and a live value
    would make results scheduling-dependent.

Deterministic merge
    The winner is the minimum by ``(cost, restart index)``, with the
    pre-pass order winning only on strictly smaller cost.  Units spent
    are summed in ascending restart index (fixed float summation order)
    and the merged trajectory is the monotone-decreasing envelope of the
    restarts' trajectories laid end to end in index order — exactly the
    bookkeeping a serial sweep over the same restarts would produce.

Crash recovery
    A worker that dies mid-restart (or any pool-level failure) is logged
    as a :class:`~repro.robustness.resilience.FailureRecord` on the
    :class:`ParallelReport` and its restart is re-executed serially in
    the parent — never dropped — so the merged result is still
    bit-identical to the crash-free run.  Crash records live on the
    report, not the result: the result must compare equal across runs
    that did and did not crash.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from multiprocessing.sharedctypes import Synchronized

    from repro.core.optimizer import OptimizationResult

from repro.catalog.join_graph import JoinGraph, Query
from repro.core.budget import Budget, BudgetExhausted, DEFAULT_UNITS_PER_N2
from repro.core.combinations import MethodParams, Strategy
from repro.core.state import PER_PLAN
from repro.cost.base import CostModel, CostOverflowError
from repro.obs import events as obs_events
from repro.obs.events import TraceEvent
from repro.obs.metrics import Metrics
from repro.obs.tracer import RecordingTracer, Tracer
from repro.parallel.bound import SharedBound
from repro.plans.join_order import JoinOrder
from repro.robustness.faults import InjectedFault
from repro.robustness.resilience import (
    FailureLog,
    FailureRecord,
    deterministic_fallback_order,
)
from repro.utils.rng import derive_seed

#: Restart count used when the caller asks for orchestration (``workers``
#: and/or ``restarts``) without fixing the count.  A constant independent
#: of the worker count, so ``workers=4`` and ``workers=1`` run the same
#: restarts by default.
DEFAULT_RESTARTS = 8

# Worker-process state installed by the pool initializer.  ``_IN_POOL_WORKER``
# doubles as the guard for the crash-injection hook: a ``crash`` job only
# kills the process when it actually runs inside a pool worker, so the
# serial re-execution of that same job in the parent completes normally.
_SHARED_BOUND: SharedBound | None = None
_IN_POOL_WORKER = False


def _pool_init(raw_bound: "Synchronized | None") -> None:
    global _SHARED_BOUND, _IN_POOL_WORKER
    _IN_POOL_WORKER = True
    if raw_bound is not None:
        _SHARED_BOUND = SharedBound(raw_bound)


@dataclass(frozen=True)
class OptimizeJob:
    """One self-contained, picklable ``optimize()`` invocation.

    ``limit`` of ``None`` lets ``optimize`` derive the paper budget from
    ``time_factor``/``units_per_n2``; the orchestrator always sets an
    explicit share.  ``crash`` is the fault-injection hook: the job calls
    ``os._exit`` when (and only when) executed inside a pool worker.
    """

    graph: JoinGraph
    method: str | Strategy
    model: CostModel
    seed: int
    index: int
    tag: str
    limit: float | None = None
    time_factor: float = 9.0
    units_per_n2: float = DEFAULT_UNITS_PER_N2
    params: MethodParams | None = None
    incremental: bool = True
    batch_costing: bool = False
    budget_accounting: str = PER_PLAN
    record_floor: float | None = None
    stop_at_bound: bool = False
    bound_tolerance: float = 1.05
    crash: bool = False
    #: Record a worker-local trace and ship it back on the outcome.  A
    #: bool (not a tracer object) so the job stays picklable; the parent
    #: merges the shipped events deterministically by restart index.
    trace: bool = False


@dataclass(frozen=True)
class JobOutcome:
    """What one job produced: a result, or how far it got before failing."""

    index: int
    tag: str
    result: object | None  # OptimizationResult | None
    units_spent: float
    error: str | None = None
    #: Worker-local trace events (empty unless the job asked to trace).
    events: tuple[TraceEvent, ...] = ()
    #: Worker-local metrics snapshot (JSON-safe; crosses the pool pickle).
    metrics: dict | None = None


def run_job(job: OptimizeJob) -> JobOutcome:
    """Execute one job (in a pool worker or inline in the parent)."""
    if job.crash and _IN_POOL_WORKER:
        # Simulate a hard worker crash: no exception, no cleanup, the
        # process is simply gone.  The parent sees BrokenProcessPool.
        os._exit(17)
    from repro.core.optimizer import optimize

    budget = Budget(limit=job.limit) if job.limit is not None else None
    tracer = RecordingTracer() if job.trace else None
    try:
        result = optimize(
            job.graph,
            method=job.method,
            model=job.model,
            time_factor=job.time_factor,
            units_per_n2=job.units_per_n2,
            seed=job.seed,
            budget=budget,
            params=job.params,
            stop_at_bound=job.stop_at_bound,
            bound_tolerance=job.bound_tolerance,
            incremental=job.incremental,
            batch_costing=job.batch_costing,
            budget_accounting=job.budget_accounting,
            record_floor=job.record_floor,
            trace=tracer,
        )
    except BudgetExhausted as exc:
        if budget is not None:
            spent = budget.spent
        else:
            spent = Budget.for_query(
                max(1, job.graph.n_joins), job.time_factor, job.units_per_n2
            ).limit
        return JobOutcome(
            job.index, job.tag, None, spent, str(exc),
            events=tuple(tracer.events) if tracer is not None else (),
            metrics=tracer.metrics.snapshot() if tracer is not None else None,
        )
    if _SHARED_BOUND is not None:
        # detlint: ignore[RACE001] -- lock-guarded monotone bound channel
        _SHARED_BOUND.publish(result.cost)
    return JobOutcome(
        job.index, job.tag, result, result.units_spent, None,
        events=tuple(tracer.events) if tracer is not None else (),
        metrics=tracer.metrics.snapshot() if tracer is not None else None,
    )


def map_jobs(
    jobs: list[OptimizeJob],
    workers: int,
    failure_log: FailureLog | None = None,
    shared: SharedBound | None = None,
) -> list[JobOutcome]:
    """Run jobs across ``workers`` processes; outcomes in job order.

    With one worker (or one job) everything runs inline — no pool, no
    pickling, and the crash-injection hook stays inert.  Pool failures
    (a worker killed mid-job, a pickling error, a broken pool) are
    logged to ``failure_log`` and the affected jobs re-executed serially
    in the parent, so no job is ever dropped and the returned outcomes
    are independent of how (or whether) the pool misbehaved.
    """
    outcomes: dict[int, JobOutcome] = {}
    if workers > 1 and len(jobs) > 1:
        raw = shared.raw if shared is not None else None
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_init, initargs=(raw,)
        ) as pool:
            futures = {pool.submit(run_job, job): job for job in jobs}
            for future in as_completed(futures):
                job = futures[future]
                try:
                    outcomes[job.index] = future.result()
                # boundary: pool failures are logged, the job re-run serially
                except Exception as exc:  # noqa: BLE001
                    if failure_log is not None:
                        failure_log.add(
                            stage=f"parallel-worker-{job.index}",
                            method=job.tag,
                            seed=job.seed,
                            kind=type(exc).__name__,
                            detail=str(exc) or "worker process died",
                            action="re-executed serially in parent",
                        )
    for job in jobs:
        if job.index not in outcomes:
            outcome = run_job(job)
            if shared is not None and outcome.result is not None:
                shared.publish(outcome.result.cost)
            outcomes[job.index] = outcome
    return [outcomes[job.index] for job in jobs]


@dataclass(frozen=True)
class ParallelReport:
    """Orchestration metadata that must stay OFF the result.

    Crash records and pool telemetry vary between runs that produced the
    *same* plan; keeping them here preserves the differential invariant
    that ``OptimizationResult`` compares equal across worker counts and
    across crashed/clean executions.
    """

    restarts: int
    workers: int
    share: float
    prepass_cost: float
    best_bound: float
    failures: tuple[FailureRecord, ...] = ()
    #: Per-restart ``(index, cost or None, units spent)`` in index order.
    outcomes: tuple[tuple[int, float | None, float], ...] = ()

    @property
    def crashed(self) -> bool:
        return bool(self.failures)


def multi_start_optimize(
    query: Query | JoinGraph,
    method: str | Strategy = "IAI",
    model: CostModel | None = None,
    time_factor: float = 9.0,
    units_per_n2: float = DEFAULT_UNITS_PER_N2,
    seed: int = 0,
    budget: Budget | None = None,
    params: MethodParams | None = None,
    restarts: int | None = None,
    workers: int | None = None,
    incremental: bool = True,
    batch_costing: bool = False,
    budget_accounting: str = PER_PLAN,
    stop_at_bound: bool = False,
    bound_tolerance: float = 1.05,
    crash_indices: tuple[int, ...] = (),
    tracer: Tracer | None = None,
) -> "tuple[OptimizationResult, ParallelReport]":
    """Multi-start optimization: parallel fan-out, deterministic merge.

    Returns ``(result, report)``: the merged
    :class:`~repro.core.optimizer.OptimizationResult` — bit-identical
    for every ``workers`` value — and the :class:`ParallelReport` with
    the orchestration telemetry (crashes, per-restart outcomes, the live
    bound's final value).

    Each restart ``k`` runs the full ``optimize()`` machinery on an
    equal budget share with seed ``derive_seed(seed, "worker", k)``, so
    a restart's outcome is a pure function of ``(seed, k, share)`` and
    never of which process ran it when.  ``crash_indices`` marks
    restarts that kill their pool worker mid-job (test hook).

    With a recording ``tracer``, every restart records a worker-local
    trace (shipped back through the pool as plain events) and the parent
    lays them end to end in restart-index order — never completion
    order — with each restart's clocks offset by the units spent before
    it, exactly like the merged trajectory.  The merged trace is
    therefore identical for every worker count, crashes included.
    """
    from repro.core.optimizer import (
        OptimizationResult,
        _method_label,
        optimize,
    )
    from repro.robustness.verify import verify_or_raise

    graph = query.graph if isinstance(query, Query) else query
    if model is None:
        from repro.cost.memory import MainMemoryCostModel

        model = MainMemoryCostModel()
    if params is None:
        params = MethodParams()
    if restarts is None:
        restarts = DEFAULT_RESTARTS
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    workers = 1 if workers is None else int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    label = _method_label(method)
    n_joins = max(1, graph.n_joins)
    if budget is None:
        budget = Budget.for_query(n_joins, time_factor, units_per_n2)

    if graph.n_relations == 1:
        # Mirrors the legacy contract for trivial graphs (raises
        # BudgetExhausted: there is nothing to evaluate).
        result = optimize(
            graph, method=method, model=model, seed=seed, budget=budget,
            params=params,
        )
        report = ParallelReport(
            restarts=0, workers=workers, share=0.0,
            prepass_cost=result.cost, best_bound=result.cost,
        )
        return result, report

    # Pre-pass: price the deterministic spanning order once.  Its cost is
    # the floor F every restart inherits for start-state pruning, and the
    # merge's fallback candidate.  Charged like any other evaluation.
    budget.charge(float(n_joins))
    prepass_mark = budget.spent
    fallback = deterministic_fallback_order(graph)
    try:
        floor: float | None = model.plan_cost(fallback, graph)
        if not math.isfinite(floor):
            floor = None
    except (CostOverflowError, InjectedFault, ValueError):
        # An unpriceable floor only disables the pre-pass pruning floor;
        # anything else a model raises is a bug and must propagate.
        floor = None
    tracing = tracer is not None and tracer.enabled
    if tracing and floor is not None:
        tracer.emit(obs_events.BOUND, kind="prepass_floor", value=floor)
        tracer.metrics.inc("bounds_published")

    share = max(1.0, budget.remaining / restarts)
    jobs = [
        OptimizeJob(
            graph=graph,
            method=method,
            model=model,
            seed=derive_seed(seed, "worker", k),
            index=k,
            tag=f"{label}#{k}",
            limit=share,
            time_factor=time_factor,
            units_per_n2=units_per_n2,
            params=params,
            incremental=incremental,
            batch_costing=batch_costing,
            budget_accounting=budget_accounting,
            record_floor=floor,
            stop_at_bound=stop_at_bound,
            bound_tolerance=bound_tolerance,
            crash=(k in crash_indices),
            trace=tracing,
        )
        for k in range(restarts)
    ]

    failure_log = FailureLog()
    shared = SharedBound()
    if floor is not None:
        shared.publish(floor)
    outcomes = map_jobs(jobs, workers, failure_log=failure_log, shared=shared)

    # Deterministic merge: minimum by (cost, restart index); the pre-pass
    # order wins only on strictly smaller cost.
    winner: JobOutcome | None = None
    for outcome in outcomes:
        if outcome.result is not None and (
            winner is None or outcome.result.cost < winner.result.cost
        ):
            winner = outcome
    if winner is None and floor is None:
        raise BudgetExhausted(
            "budget expired before any plan could be evaluated"
        )
    if winner is not None and (floor is None or winner.result.cost <= floor):
        best_order: JoinOrder = winner.result.order
        best_cost: float = winner.result.cost
    else:
        best_order, best_cost = fallback, floor

    # Serial-equivalent bookkeeping: units in ascending index order, the
    # trajectory as the monotone-decreasing envelope with each restart's
    # points offset by everything spent before it.
    trajectory: list[tuple[float, float]] = []
    best_so_far = math.inf
    if floor is not None:
        trajectory.append((prepass_mark, floor))
        best_so_far = floor
    offset = prepass_mark
    total_evaluations = 1 if floor is not None else 0
    for outcome in outcomes:
        if tracing and isinstance(tracer, RecordingTracer):
            # The trace merge mirrors the trajectory merge exactly: the
            # restart's events keep their order, clocks shift by the
            # units spent before it, and the restart index becomes the
            # worker attribution — index order, never completion order.
            restart_data: dict[str, object] = {
                "index": outcome.index,
                "units": outcome.units_spent,
            }
            if outcome.result is not None:
                # Per-restart attribution for the profiler/provenance
                # readers: deterministic (outcomes are index-ordered and
                # worker-count invariant), so merged traces stay
                # bit-identical across worker counts.
                restart_data["cost"] = outcome.result.cost
            tracer.extend_merged(
                [
                    TraceEvent(
                        seq=0,
                        clock=0.0,
                        kind=obs_events.RESTART,
                        data=restart_data,
                    )
                ],
                clock_offset=offset,
                worker=outcome.index,
            )
            tracer.extend_merged(
                list(outcome.events),
                clock_offset=offset,
                worker=outcome.index,
            )
            tracer.metrics.inc("restarts")
            tracer.metrics.gauge(
                f"worker.{outcome.index}.units", outcome.units_spent
            )
            if outcome.metrics is not None:
                tracer.metrics.merge(Metrics.from_snapshot(outcome.metrics))
        if outcome.result is not None:
            total_evaluations += outcome.result.n_evaluations
            for units, cost in outcome.result.trajectory:
                if cost < best_so_far:
                    best_so_far = cost
                    trajectory.append((offset + units, cost))
        offset += outcome.units_spent
    budget.spent = min(budget.limit, offset)
    if tracing:
        # Pool crashes arrive in completion order; mirror them into the
        # trace in a canonical order so crash-free traces stay identical
        # across worker counts and crashed traces are at least stable.
        for record in sorted(
            failure_log.as_tuple(), key=lambda r: (r.stage, r.kind)
        ):
            tracer.emit(
                obs_events.FAULT,
                stage=record.stage,
                kind=record.kind,
                action=record.action,
            )
            tracer.metrics.inc("faults")

    result = OptimizationResult(
        method=label,
        graph=graph,
        order=best_order,
        cost=best_cost,
        units_spent=budget.spent,
        n_evaluations=total_evaluations,
        trajectory=tuple(trajectory),
    )
    verify_or_raise(result.order, result.cost, graph, model)
    report = ParallelReport(
        restarts=restarts,
        workers=workers,
        share=share,
        prepass_cost=floor if floor is not None else math.inf,
        best_bound=shared.get(),
        failures=failure_log.as_tuple(),
        outcomes=tuple(
            (
                o.index,
                o.result.cost if o.result is not None else None,
                o.units_spent,
            )
            for o in outcomes
        ),
    )
    return result, report
