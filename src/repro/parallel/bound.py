"""A cross-process, monotonically decreasing best-cost bound.

Workers publish every restart's final cost here, so any observer (the
orchestrating parent, a progress display, another worker between
restarts) can read the globally best cost seen so far without waiting
for the merge.

What the bound is **not** used for — deliberately — is mid-restart
pruning.  For the acceptance-driven searches this repo runs, the
incumbent state's cost is already the tightest sound upper bound (any
candidate pricier than the incumbent is rejected regardless), and
consulting a live cross-process value would make a restart's outcome
depend on scheduling, destroying the ``workers=N == workers=1``
bit-identity invariant the test harness enforces.  The *deterministic*
global bound every restart inherits is the orchestrator's pre-pass
floor (see :mod:`repro.parallel.orchestrator`), threaded into the
evaluators as ``record_floor``.
"""

from __future__ import annotations

import math
import multiprocessing as mp
from multiprocessing.sharedctypes import Synchronized


class SharedBound:
    """Monotone-min double shared across processes.

    Safe to hand to :class:`~concurrent.futures.ProcessPoolExecutor`
    workers through the pool initializer (works under both ``fork`` and
    ``spawn`` start methods, where closures over inherited globals would
    not).
    """

    def __init__(self, value: Synchronized | None = None) -> None:
        self._value: Synchronized = (
            value if value is not None else mp.Value("d", math.inf)
        )

    @property
    def raw(self) -> Synchronized:
        """The underlying ``multiprocessing.Value`` (for pool initargs)."""
        return self._value

    def get(self) -> float:
        """The best (lowest) cost published so far; ``inf`` when none."""
        with self._value.get_lock():
            return self._value.value

    def publish(self, cost: float) -> bool:
        """Lower the bound to ``cost`` if it improves it.

        Returns True when ``cost`` became the new bound.  Non-finite
        costs are ignored: a NaN/inf publication must never poison the
        bound (NaN compares false against everything and would otherwise
        freeze it).
        """
        if not math.isfinite(cost):
            return False
        with self._value.get_lock():
            if cost < self._value.value:
                self._value.value = cost
                return True
            return False
