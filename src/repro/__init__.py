"""repro — reproduction of Swami's "Optimization of Large Join Queries".

Heuristics (augmentation, KBZ, local improvement) and combinatorial
techniques (iterative improvement, simulated annealing) for ordering
queries with 10–100 joins, with the paper's synthetic benchmarks and the
full experiment harness for its tables and figures.

Quickstart
----------
>>> from repro import generate_query, optimize, DEFAULT_SPEC
>>> query = generate_query(DEFAULT_SPEC, n_joins=12, seed=7)
>>> result = optimize(query, method="IAI", seed=1)
>>> result.cost > 0
True
"""

from repro.catalog import (
    JoinGraph,
    JoinPredicate,
    Query,
    QueryBuilder,
    Relation,
    load_benchmark,
    load_query,
    save_benchmark,
    save_query,
)
from repro.core import (
    AugmentationCriterion,
    Budget,
    BudgetExhausted,
    OptimizationResult,
    available_methods,
    dp_optimal_order,
    optimize,
)
from repro.cost import DiskCostModel, MainMemoryCostModel, StaticCostModel
from repro.frontend import ColumnStats, StatsCatalog, parse_query
from repro.plans import JoinOrder, JoinTree, build_join_tree, is_valid_order
from repro.workloads import (
    DEFAULT_SPEC,
    WorkloadSpec,
    benchmark_spec,
    generate_benchmark,
    generate_query,
)

__version__ = "1.0.0"

__all__ = [
    "Relation",
    "JoinPredicate",
    "JoinGraph",
    "Query",
    "QueryBuilder",
    "JoinOrder",
    "JoinTree",
    "build_join_tree",
    "is_valid_order",
    "MainMemoryCostModel",
    "DiskCostModel",
    "StaticCostModel",
    "dp_optimal_order",
    "ColumnStats",
    "StatsCatalog",
    "parse_query",
    "load_benchmark",
    "load_query",
    "save_benchmark",
    "save_query",
    "Budget",
    "BudgetExhausted",
    "AugmentationCriterion",
    "OptimizationResult",
    "available_methods",
    "optimize",
    "WorkloadSpec",
    "DEFAULT_SPEC",
    "benchmark_spec",
    "generate_benchmark",
    "generate_query",
    "__version__",
]
