"""The default benchmark and its nine variations (the paper's §5).

The variations, numbered 1–9 in the order the paper lists them:

=====  =================================================================
1      cardinalities ``[10,10^3) 20%, [10^3,10^4) 60%, [10^4,10^5) 20%``
       (default shape, range scaled by 10)
2      cardinalities uniform over ``[10, 10^4)``
3      cardinalities uniform over ``[10, 10^5)``
4      distinct fractions ``(0,0.2] 80%, (0.2,1) 16%, 1.0 4%`` (more
       distinct values — smaller intermediates)
5      distinct fractions ``(0,0.1] 90%, (0.1,1) 9%, 1.0 1%`` (fewer —
       larger intermediates, harder queries)
6      distinct fractions ``(0,0.1] 80%, (0.1,1) 16%, 1.0 4%``
7      join cutoff probability 0.1, no bias (denser join graphs)
8      star-biased join graphs, cutoff 0.01
9      chain-biased join graphs, cutoff 0.01
=====  =================================================================
"""

from __future__ import annotations

from dataclasses import replace

from repro.catalog.join_graph import Query
from repro.utils.rng import derive_seed
from repro.workloads.distributions import BucketDistribution, WorkloadSpec
from repro.workloads.generator import generate_query

#: The paper's default benchmark specification.
DEFAULT_SPEC = WorkloadSpec()


def _variations() -> dict[int, WorkloadSpec]:
    return {
        1: replace(
            DEFAULT_SPEC,
            name="card-x10",
            cardinality=BucketDistribution.from_triples(
                (10, 1_000, 0.20), (1_000, 10_000, 0.60), (10_000, 100_000, 0.20)
            ),
        ),
        2: replace(
            DEFAULT_SPEC,
            name="card-uniform-1e4",
            cardinality=BucketDistribution.uniform(10, 10_000),
        ),
        3: replace(
            DEFAULT_SPEC,
            name="card-uniform-1e5",
            cardinality=BucketDistribution.uniform(10, 100_000),
        ),
        4: replace(
            DEFAULT_SPEC,
            name="distinct-high",
            distinct_fraction=BucketDistribution.from_triples(
                (0.0, 0.2, 0.80), (0.2, 1.0, 0.16), (1.0, 1.0, 0.04)
            ),
        ),
        5: replace(
            DEFAULT_SPEC,
            name="distinct-low",
            distinct_fraction=BucketDistribution.from_triples(
                (0.0, 0.1, 0.90), (0.1, 1.0, 0.09), (1.0, 1.0, 0.01)
            ),
        ),
        6: replace(
            DEFAULT_SPEC,
            name="distinct-low-high",
            distinct_fraction=BucketDistribution.from_triples(
                (0.0, 0.1, 0.80), (0.1, 1.0, 0.16), (1.0, 1.0, 0.04)
            ),
        ),
        7: replace(
            DEFAULT_SPEC,
            name="dense-graph",
            join_cutoff_probability=0.1,
        ),
        8: replace(DEFAULT_SPEC, name="star-graph", graph_bias="star"),
        9: replace(DEFAULT_SPEC, name="chain-graph", graph_bias="chain"),
    }


def benchmark_specs() -> dict[int, WorkloadSpec]:
    """All specs keyed by the paper's numbering; 0 is the default."""
    specs = {0: DEFAULT_SPEC}
    specs.update(_variations())
    return specs


def benchmark_spec(number: int) -> WorkloadSpec:
    """Spec ``number`` (0 = default, 1–9 = the paper's variations)."""
    specs = benchmark_specs()
    try:
        return specs[number]
    except KeyError:
        raise ValueError(
            f"benchmark number must be 0..9, got {number}"
        ) from None


def generate_benchmark(
    spec: WorkloadSpec,
    n_values: tuple[int, ...] = (10, 20, 30, 40, 50),
    queries_per_n: int = 50,
    seed: int = 0,
) -> list[Query]:
    """Materialise a full benchmark: ``queries_per_n`` queries per ``N``.

    The paper's main benchmark is 50 queries for each of
    ``N = 10..50`` (250 queries); its larger benchmark extends to
    ``N = 100`` (500 queries).  Both are reachable by parameter choice;
    the defaults here match the paper's main benchmark.
    """
    queries: list[Query] = []
    for n_joins in n_values:
        for index in range(queries_per_n):
            query_seed = derive_seed(seed, spec.name, n_joins, index)
            queries.append(
                generate_query(
                    spec,
                    n_joins,
                    query_seed,
                    name=f"{spec.name}-N{n_joins}-q{index}",
                )
            )
    return queries
