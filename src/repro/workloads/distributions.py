"""Parameter distributions for the synthetic benchmarks.

The paper specifies every query feature as a small bucketed distribution
(e.g. relation cardinalities: ``[10,100) 20%, [100,1000) 60%,
[1000,10000) 20%``).  :class:`BucketDistribution` models exactly that: a
bucket is picked by its probability, then a value is drawn uniformly
within it (a zero-width bucket is a point mass, used for the "fraction
exactly 1.0" distinct-value case).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.utils.validation import check_probability


@dataclass(frozen=True)
class Bucket:
    """One bucket: values in ``[low, high)`` with mass ``probability``.

    ``low == high`` denotes a point mass at that value.
    """

    low: float
    high: float
    probability: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"bucket upper bound below lower: {self}")
        check_probability("probability", self.probability)

    def sample(self, rng: random.Random) -> float:
        if self.high == self.low:
            return self.low
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class BucketDistribution:
    """A mixture of uniform buckets with probabilities summing to one."""

    buckets: tuple[Bucket, ...]

    def __post_init__(self) -> None:
        total = sum(bucket.probability for bucket in self.buckets)
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ValueError(f"bucket probabilities sum to {total}, expected 1")

    @classmethod
    def from_triples(
        cls, *triples: tuple[float, float, float]
    ) -> "BucketDistribution":
        """Build from ``(low, high, probability)`` triples."""
        return cls(tuple(Bucket(*triple) for triple in triples))

    @classmethod
    def uniform(cls, low: float, high: float) -> "BucketDistribution":
        """A single uniform bucket over ``[low, high)``."""
        return cls((Bucket(low, high, 1.0),))

    def sample(self, rng: random.Random) -> float:
        draw = rng.random()
        cumulative = 0.0
        for bucket in self.buckets:
            cumulative += bucket.probability
            if draw < cumulative:
                return bucket.sample(rng)
        return self.buckets[-1].sample(rng)


#: The paper's selection-predicate selectivities; repeats encode frequency.
SELECTION_SELECTIVITIES: tuple[float, ...] = (
    0.001, 0.01, 0.1, 0.2, 0.34, 0.34, 0.34,
    0.34, 0.34, 0.5, 0.5, 0.5, 0.67, 0.8, 1.0,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the generator needs to synthesise one benchmark.

    The defaults are the paper's "default benchmark" (§5); the nine
    variations override single fields (see
    :mod:`repro.workloads.benchmarks`).
    """

    name: str = "default"
    cardinality: BucketDistribution = field(
        default_factory=lambda: BucketDistribution.from_triples(
            (10, 100, 0.20), (100, 1_000, 0.60), (1_000, 10_000, 0.20)
        )
    )
    distinct_fraction: BucketDistribution = field(
        default_factory=lambda: BucketDistribution.from_triples(
            (0.0, 0.2, 0.90), (0.2, 1.0, 0.09), (1.0, 1.0, 0.01)
        )
    )
    selection_selectivities: tuple[float, ...] = SELECTION_SELECTIVITIES
    max_selections: int = 2
    join_cutoff_probability: float = 0.01
    graph_bias: str = "none"

    def __post_init__(self) -> None:
        check_probability(
            "join_cutoff_probability", self.join_cutoff_probability
        )
        if self.graph_bias not in ("none", "star", "chain"):
            raise ValueError(
                f"graph_bias must be none/star/chain, got {self.graph_bias!r}"
            )
        if self.max_selections < 0:
            raise ValueError("max_selections must be >= 0")
