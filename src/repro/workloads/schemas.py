"""Schema-shaped query generators: star and snowflake warehouses.

The synthetic benchmark of §5 draws *statistics* from distributions; its
star/chain variants only bias the join graph's shape.  This module
generates queries with warehouse *semantics* instead — a central fact
table with foreign keys into dimensions (star), optionally with
normalized dimension hierarchies (snowflake) — the concrete workload the
paper's introduction motivates via object-oriented and view-heavy
applications.  Key/foreign-key statistics are set exactly: a dimension's
join column is its key (distinct = cardinality) and the fact side has as
many distinct values as the dimension has rows, so every fact row finds
exactly one dimension partner.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.join_graph import JoinGraph, Query
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation, Selection
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class StarSchemaSpec:
    """Parameters of a star/snowflake query generator.

    ``hierarchy_depth = 1`` is a pure star; deeper values chain each
    dimension into a normalized hierarchy (snowflake), multiplying the
    number of joins without touching the fact table's degree.
    """

    n_dimensions: int = 8
    hierarchy_depth: int = 1
    fact_rows: int = 1_000_000
    dimension_rows: tuple[int, int] = (100, 50_000)
    shrink_per_level: float = 0.1
    fact_selectivity: float = 0.2
    dimension_selection_probability: float = 0.5

    def __post_init__(self) -> None:
        check_positive("n_dimensions", self.n_dimensions)
        check_positive("hierarchy_depth", self.hierarchy_depth)
        check_positive("fact_rows", self.fact_rows)
        if not 0 < self.shrink_per_level <= 1:
            raise ValueError("shrink_per_level must be in (0, 1]")

    @property
    def n_joins(self) -> int:
        return self.n_dimensions * self.hierarchy_depth


def generate_star_query(
    spec: StarSchemaSpec, seed: int = 0, name: str | None = None
) -> Query:
    """One star/snowflake query under ``spec`` (deterministic per seed)."""
    rng: random.Random = derive_rng(seed, "star-schema", spec.n_dimensions)
    relations: list[Relation] = []
    predicates: list[JoinPredicate] = []

    fact_selections = (
        (Selection(spec.fact_selectivity, column="measure"),)
        if spec.fact_selectivity < 1.0
        else ()
    )
    relations.append(Relation("facts", spec.fact_rows, fact_selections))

    low, high = spec.dimension_rows
    for dimension in range(spec.n_dimensions):
        parent_index = 0  # the fact table
        rows = rng.randint(low, high)
        for level in range(spec.hierarchy_depth):
            suffix = f"_l{level}" if spec.hierarchy_depth > 1 else ""
            selections = ()
            if rng.random() < spec.dimension_selection_probability:
                selections = (Selection(rng.choice((0.1, 0.34, 0.5)), "attr"),)
            relation = Relation(f"dim{dimension}{suffix}", rows, selections)
            relations.append(relation)
            index = len(relations) - 1
            # Foreign key: the child side references the new relation's
            # key.  Distinct on the referencing side = referenced rows
            # (every key value appears), on the key side = its rows.
            parent_effective = relations[parent_index].cardinality
            key_distinct = float(rows)
            referencing_distinct = min(parent_effective, key_distinct)
            predicates.append(
                JoinPredicate(
                    parent_index,
                    index,
                    left_distinct=max(1.0, referencing_distinct),
                    right_distinct=max(1.0, key_distinct),
                )
            )
            parent_index = index
            rows = max(2, int(rows * spec.shrink_per_level))

    graph = JoinGraph(relations, predicates)
    kind = "snowflake" if spec.hierarchy_depth > 1 else "star"
    return Query(
        graph=graph,
        name=name or f"{kind}-d{spec.n_dimensions}-h{spec.hierarchy_depth}-s{seed}",
        seed=seed,
        metadata={
            "schema": kind,
            "n_dimensions": spec.n_dimensions,
            "hierarchy_depth": spec.hierarchy_depth,
        },
    )


def generate_star_benchmark(
    spec: StarSchemaSpec,
    n_queries: int = 10,
    seed: int = 0,
) -> list[Query]:
    """A set of star/snowflake queries varying only by seed."""
    from repro.utils.rng import derive_seed

    return [
        generate_star_query(spec, derive_seed(seed, "star-bench", index))
        for index in range(n_queries)
    ]
