"""Random query generation (the paper's §5).

The join graph is generated in two steps:

1. **Spanning step** — a connected graph over ``N + 1`` relations is grown
   so that the identity permutation is valid: relations are linked in
   numerical order, each new relation ``i`` attaching to a relation already
   in the linked set.  The attachment choice carries the benchmark's bias:

   * ``none`` — uniformly random member of the linked set (the default);
   * ``star`` — preferential attachment (probability proportional to the
     square of the current degree), producing a few high-degree hubs;
   * ``chain`` — attach to the most recently linked relation with high
     probability, producing long paths.

2. **Cutoff step** — every remaining pair of relations is linked with the
   *join cutoff probability*, possibly creating cycles.

Each join predicate draws a distinct-value count for both of its columns
as a fraction of the owning relation's effective cardinality; the join
selectivity follows as ``1 / max(D_left, D_right)``.
"""

from __future__ import annotations

import random

from repro.catalog.join_graph import JoinGraph, Query
from repro.catalog.predicates import JoinPredicate
from repro.catalog.relation import Relation, Selection
from repro.utils.rng import derive_rng
from repro.workloads.distributions import WorkloadSpec

#: Probability with which the chain bias attaches to the newest relation.
_CHAIN_STICKINESS = 0.9


def _sample_relation(spec: WorkloadSpec, index: int, rng: random.Random) -> Relation:
    cardinality = max(2, int(spec.cardinality.sample(rng)))
    n_selections = rng.randint(0, spec.max_selections)
    selections = tuple(
        Selection(rng.choice(spec.selection_selectivities), column=f"s{k}")
        for k in range(n_selections)
    )
    return Relation(f"R{index}", cardinality, selections)


def _pick_attachment(
    linked: list[int],
    degrees: list[int],
    bias: str,
    rng: random.Random,
) -> int:
    if bias == "chain" and rng.random() < _CHAIN_STICKINESS:
        return linked[-1]
    if bias == "star":
        weights = [(degrees[v] + 1) ** 2 for v in linked]
        return rng.choices(linked, weights=weights, k=1)[0]
    return rng.choice(linked)


def _distinct_values(
    spec: WorkloadSpec, relation: Relation, rng: random.Random
) -> float:
    """Distinct-value count for one join column of ``relation``."""
    fraction = spec.distinct_fraction.sample(rng)
    cardinality = relation.cardinality
    return max(1.0, min(cardinality, round(fraction * cardinality)))


def generate_query(
    spec: WorkloadSpec,
    n_joins: int,
    seed: int,
    name: str | None = None,
) -> Query:
    """Generate one random query with ``n_joins`` joins under ``spec``.

    The same ``(spec, n_joins, seed)`` triple always yields the same query.
    """
    if n_joins < 1:
        raise ValueError(f"n_joins must be >= 1, got {n_joins}")
    rng = derive_rng(seed, "workload", spec.name, n_joins)
    n_relations = n_joins + 1
    relations = [_sample_relation(spec, i, rng) for i in range(n_relations)]

    # Step 1: connected spanning structure, identity permutation valid.
    edges: set[tuple[int, int]] = set()
    degrees = [0] * n_relations
    linked = [0]
    for i in range(1, n_relations):
        partner = _pick_attachment(linked, degrees, spec.graph_bias, rng)
        edges.add((min(i, partner), max(i, partner)))
        degrees[i] += 1
        degrees[partner] += 1
        linked.append(i)

    # Step 2: extra predicates with the join cutoff probability.
    for a in range(n_relations):
        for b in range(a + 1, n_relations):
            if (a, b) in edges:
                continue
            if rng.random() < spec.join_cutoff_probability:
                edges.add((a, b))

    predicates = [
        JoinPredicate(
            a,
            b,
            left_distinct=_distinct_values(spec, relations[a], rng),
            right_distinct=_distinct_values(spec, relations[b], rng),
        )
        for a, b in sorted(edges)
    ]
    graph = JoinGraph(relations, predicates)
    return Query(
        graph=graph,
        name=name or f"{spec.name}-N{n_joins}-s{seed}",
        seed=seed,
        metadata={"spec": spec.name, "n_joins": n_joins},
    )
