"""Synthetic query benchmarks (the paper's §5).

* :mod:`repro.workloads.distributions` — the parameter distributions.
* :mod:`repro.workloads.generator` — random query generation (the
  two-step join-graph construction, with star/chain biases).
* :mod:`repro.workloads.benchmarks` — the default benchmark and its nine
  variations, plus helpers to materialise full query sets.
"""

from repro.workloads.distributions import BucketDistribution, WorkloadSpec
from repro.workloads.generator import generate_query
from repro.workloads.benchmarks import (
    DEFAULT_SPEC,
    benchmark_spec,
    benchmark_specs,
    generate_benchmark,
)
from repro.workloads.schemas import (
    StarSchemaSpec,
    generate_star_benchmark,
    generate_star_query,
)

__all__ = [
    "BucketDistribution",
    "WorkloadSpec",
    "generate_query",
    "DEFAULT_SPEC",
    "benchmark_spec",
    "benchmark_specs",
    "generate_benchmark",
    "StarSchemaSpec",
    "generate_star_benchmark",
    "generate_star_query",
]
