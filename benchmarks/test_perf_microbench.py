"""Micro-benchmarks of the optimizer's hot paths.

Unlike the table/figure benches (which regenerate experiments), these
use pytest-benchmark conventionally: repeated timing of the inner-loop
primitives, for performance-regression tracking.  Each asserts a very
loose sanity bound so a pathological slowdown fails loudly.
"""

import random

import pytest

from repro.core.augmentation import augment_order
from repro.core.kbz import kbz_orders
from repro.core.moves import MoveSet
from repro.cost.memory import MainMemoryCostModel
from repro.plans.validity import is_valid_order, random_valid_order
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query


@pytest.fixture(scope="module", params=[20, 50])
def sized_query(request):
    return generate_query(DEFAULT_SPEC, n_joins=request.param, seed=1)


def test_perf_plan_cost(benchmark, sized_query):
    graph = sized_query.graph
    model = MainMemoryCostModel()
    order = random_valid_order(graph, random.Random(0))
    cost = benchmark(model.plan_cost, order, graph)
    assert cost > 0
    # Loose sanity bound: a plan evaluation stays under a millisecond
    # per joined relation even on slow machines.
    assert benchmark.stats.stats.mean < 1e-3 * graph.n_relations


def test_perf_random_neighbor(benchmark, sized_query):
    graph = sized_query.graph
    move_set = MoveSet()
    rng = random.Random(0)
    order = random_valid_order(graph, rng)
    neighbor = benchmark(move_set.random_neighbor, order, graph, rng)
    assert is_valid_order(neighbor, graph)


def test_perf_validity_check(benchmark, sized_query):
    graph = sized_query.graph
    order = random_valid_order(graph, random.Random(0))
    assert benchmark(is_valid_order, order, graph)


def test_perf_augmentation_state(benchmark, sized_query):
    graph = sized_query.graph
    order = benchmark(augment_order, graph, 0)
    assert is_valid_order(order, graph)


def test_perf_kbz_all_states(benchmark, sized_query):
    graph = sized_query.graph
    orders = benchmark(lambda: list(kbz_orders(graph)))
    assert len(orders) == graph.n_relations
