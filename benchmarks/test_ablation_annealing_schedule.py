"""Ablation — the annealing schedule under the work-unit clock.

JAMS87's recommended chain length (``size_factor = 16``) assumes a
CPU-seconds budget rich enough for the system to freeze.  Under this
repository's compressed work-unit budget, long chains leave SA still hot
when time runs out, degenerating it into a random walk.  This ablation
sweeps the chain length and cooling rate and shows (a) why the library's
default schedule is recalibrated and (b) that SA stays inferior to II
across the whole grid — the paper's conclusion is not an artifact of one
schedule choice.
"""

from repro.core.annealing import AnnealingSchedule
from repro.core.combinations import MethodParams
from repro.core.optimizer import optimize
from repro.experiments.report import render_matrix
from repro.utils.rng import derive_seed
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark

from bench_utils import BENCH_SCALE, save_and_print

_GRID = (
    (2, 0.90),
    (4, 0.90),
    (8, 0.95),
    (16, 0.95),  # JAMS87's setting
)


def run_schedule_ablation():
    queries = generate_benchmark(
        DEFAULT_SPEC,
        n_values=(20,),
        queries_per_n=8,
        seed=BENCH_SCALE["seed"],
    )
    rows: dict[str, float] = {}
    ii_scaled: list[float] = []
    per_query_best: dict[str, float] = {}
    results: dict[tuple, dict[str, float]] = {}
    for size_factor, temp_factor in _GRID:
        params = MethodParams(
            schedule=AnnealingSchedule(
                size_factor=size_factor, temp_factor=temp_factor
            )
        )
        results[(size_factor, temp_factor)] = {
            query.name: optimize(
                query,
                method="SA",
                time_factor=9.0,
                units_per_n2=BENCH_SCALE["units_per_n2"],
                seed=derive_seed(3, query.name, size_factor, temp_factor),
                params=params,
            ).cost
            for query in queries
        }
    ii_costs = {
        query.name: optimize(
            query,
            method="II",
            time_factor=9.0,
            units_per_n2=BENCH_SCALE["units_per_n2"],
            seed=derive_seed(3, query.name, "II"),
        ).cost
        for query in queries
    }
    for query in queries:
        candidates = [ii_costs[query.name]] + [
            results[key][query.name] for key in _GRID
        ]
        per_query_best[query.name] = min(candidates)
    for key in _GRID:
        scaled = [
            min(results[key][query.name] / per_query_best[query.name], 10.0)
            for query in queries
        ]
        rows[f"sf={key[0]}, tf={key[1]}"] = sum(scaled) / len(scaled)
    ii_scaled = [
        min(ii_costs[query.name] / per_query_best[query.name], 10.0)
        for query in queries
    ]
    rows["II (reference)"] = sum(ii_scaled) / len(ii_scaled)
    return rows


def test_annealing_schedule_ablation(benchmark):
    rows = benchmark.pedantic(run_schedule_ablation, rounds=1, iterations=1)
    text = render_matrix(
        "Ablation: SA schedule grid at 9N^2 (mean scaled cost)",
        row_labels=list(rows),
        column_labels=["scaled"],
        values=[[value] for value in rows.values()],
        row_header="schedule",
    )
    save_and_print("ablation_annealing_schedule", text)

    sa_values = {k: v for k, v in rows.items() if k.startswith("sf=")}
    # II beats SA at every schedule in the grid.
    assert rows["II (reference)"] <= min(sa_values.values())
    # Shorter chains (which can actually freeze) beat JAMS87's long ones
    # under the compressed clock.
    assert sa_values["sf=2, tf=0.9"] <= sa_values["sf=16, tf=0.95"]
