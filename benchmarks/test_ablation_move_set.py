"""Ablation — composition of the move set (beyond the paper).

The paper inherits its move set from [SG88] without restating it; this
repo mixes swap and insert moves evenly (see DESIGN.md's substitution
table).  The ablation runs II with swap-only, insert-only, and mixed move
sets: the substitution is supported if the mixed set is no worse than the
better pure set.
"""

from repro.core.combinations import MethodParams
from repro.core.moves import MoveSet
from repro.core.optimizer import optimize
from repro.experiments.report import render_matrix
from repro.utils.rng import derive_seed
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark

from bench_utils import BENCH_SCALE, save_and_print

_VARIANTS = {
    "swap-only": MoveSet(swap_probability=1.0),
    "insert-only": MoveSet(swap_probability=0.0),
    "mixed": MoveSet(swap_probability=0.5),
}


def run_move_set_ablation():
    queries = generate_benchmark(
        DEFAULT_SPEC,
        n_values=BENCH_SCALE["n_values"],
        queries_per_n=BENCH_SCALE["queries_per_n"],
        seed=BENCH_SCALE["seed"],
    )
    raw: dict[str, list[float]] = {name: [] for name in _VARIANTS}
    for query in queries:
        per_variant = {}
        for name, move_set in _VARIANTS.items():
            result = optimize(
                query,
                method="II",
                time_factor=9.0,
                units_per_n2=BENCH_SCALE["units_per_n2"],
                seed=derive_seed(BENCH_SCALE["seed"], query.name, name),
                params=MethodParams(move_set=move_set),
            )
            per_variant[name] = result.cost
        best = min(per_variant.values())
        for name, cost in per_variant.items():
            raw[name].append(min(cost / best, 10.0))
    return {name: sum(values) / len(values) for name, values in raw.items()}


def test_move_set_ablation(benchmark):
    means = benchmark.pedantic(run_move_set_ablation, rounds=1, iterations=1)
    text = render_matrix(
        "Ablation: II under different move sets (mean scaled cost, 9N^2)",
        row_labels=list(means),
        column_labels=["scaled"],
        values=[[value] for value in means.values()],
        row_header="MoveSet",
    )
    save_and_print("ablation_move_set", text)

    # The mixed move set must not lose to the better pure variant by more
    # than a small margin (it usually wins outright).
    pure_best = min(means["swap-only"], means["insert-only"])
    assert means["mixed"] <= pure_best * 1.10
