"""Figure 7 — the top five methods under the disk-based cost model.

The paper's point: swapping the main-memory cost model for a disk-based
one does **not** change the ordering among the methods — IAI remains the
method of choice, so the query-plan space's character is model-robust.
"""

from repro.experiments.figures import figure7
from repro.experiments.report import render_experiment

from bench_utils import BENCH_SCALE, save_and_print


def run_figure7():
    return figure7(**BENCH_SCALE)


def test_figure7_disk_cost_model(benchmark):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 7: disk cost model, top five methods (mean scaled cost)",
        result,
    )
    save_and_print("figure7", text)

    at_nine = {m: result.at(m, 9.0) for m in result.config.methods}
    best = min(at_nine.values())
    # Ordering unchanged under the disk model: IAI at the front.
    assert at_nine["IAI"] <= best * 1.05
    # Sanity: the experiment really used the disk model.
    assert result.config.model.name == "disk"
