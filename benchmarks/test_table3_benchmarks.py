"""Table 3 — the top five methods across the nine benchmark variations.

Paper (Table 3, mean scaled costs at the 9N^2 limit; IAI wins every row):

    Benchmark  IAI    IAL    AGI    KBI    II
    1          1.18   1.38   1.35   1.43   1.43
    2          1.35   1.62   1.77   1.68   2.11
    3          1.30   1.55   1.76   1.96   2.06
    4          1.06   1.16   1.13   1.20   1.24
    5          1.51   2.07   1.89   1.87   2.18
    6          1.58   2.02   2.50   2.65   2.83
    7          1.02   1.10   1.06   1.06   1.04
    8          1.23   1.44   1.48   1.59   1.56
    9          1.33   1.56   1.42   1.58   1.59

Reproduced shape: IAI at or tied with the best on (nearly) every
benchmark; never the worst.
"""

from repro.experiments.report import render_matrix
from repro.experiments.tables import TABLE3_METHODS, table3

from bench_utils import BENCH_SCALE, format_paper_reference, save_and_print

_PAPER_ROWS = [
    "Bench   IAI    IAL    AGI    KBI    II",
    "1       1.18   1.38   1.35   1.43   1.43",
    "5       1.51   2.07   1.89   1.87   2.18",
    "9       1.33   1.56   1.42   1.58   1.59",
]

# Table 3 runs nine full benchmarks; trim the per-benchmark size to keep
# the bench's total runtime in the same ballpark as the figures.
_SCALE = dict(BENCH_SCALE, queries_per_n=5)


def run_table3():
    return table3(**_SCALE)


def test_table3_benchmark_variations(benchmark):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    rows = sorted(result.rows)
    text = render_matrix(
        "Table 3: benchmark variations at 9N^2 (mean scaled cost)",
        row_labels=[str(number) for number in rows],
        column_labels=list(result.methods),
        values=[[result.rows[n][m] for m in result.methods] for n in rows],
        row_header="Bench",
    )
    text += "\n\n" + format_paper_reference(_PAPER_ROWS)
    from repro.experiments.paperdata import TABLE3, ordering_agreement

    agreements = [
        ordering_agreement(TABLE3[number], result.rows[number])
        for number in rows
        if number in TABLE3
    ]
    mean_rho = sum(agreements) / len(agreements)
    text += (
        f"\n\nMean Spearman agreement with the paper's rows: {mean_rho:.2f}"
        "\n(uninformative at this scale: the five methods tie within a few"
        "\npercent per row, so their ranks are noise — see EXPERIMENTS.md)"
    )
    save_and_print("table3", text)

    # Shape: IAI within 15% of the per-row best on (almost) every
    # benchmark, and within the tie band on average across the nine
    # (the paper has IAI winning outright; under the scaled-down unit
    # budget the five methods compress into a band — see EXPERIMENTS.md).
    off_pace = 0
    for number in rows:
        row = result.rows[number]
        best = min(row.values())
        if row["IAI"] > best * 1.15:
            off_pace += 1
    assert off_pace <= 1, f"IAI off the pace on {off_pace} benchmarks"

    means = {
        method: sum(result.rows[n][method] for n in rows) / len(rows)
        for method in result.methods
    }
    assert means["IAI"] <= min(means.values()) * 1.08
    assert set(result.methods) == set(TABLE3_METHODS)
