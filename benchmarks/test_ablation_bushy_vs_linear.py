"""Ablation — outer linear vs bushy join trees (the paper's §2 open
problem).

The paper restricts its search to outer linear trees, assuming "a
significant fraction of the join trees with low processing cost is to be
found in the space of outer linear join trees" and calling the
validation of that assumption an open problem.  This bench gives both
spaces the same work-unit budget — linear II (via the standard
optimizer, static pricing) vs bushy II — and compares the plans found.
The assumption is *supported* at this scale if the bushy space's
advantage is small.
"""

from repro.core.budget import Budget
from repro.core.bushy_search import bushy_iterative_improvement
from repro.core.optimizer import optimize
from repro.cost.memory import MainMemoryCostModel
from repro.cost.static import StaticCostModel
from repro.experiments.report import render_matrix
from repro.utils.rng import derive_rng
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark

from bench_utils import BENCH_SCALE, save_and_print


def run_bushy_ablation():
    queries = generate_benchmark(
        DEFAULT_SPEC,
        n_values=(15, 25),
        queries_per_n=6,
        seed=BENCH_SCALE["seed"],
    )
    model = StaticCostModel(MainMemoryCostModel())
    ratios = []
    bushy_wins = 0
    for query in queries:
        n = query.n_joins
        limit = 9.0 * n * n * BENCH_SCALE["units_per_n2"]
        linear = optimize(
            query,
            method="II",
            model=model,
            budget=Budget(limit=limit),
            seed=7,
        )
        bushy = bushy_iterative_improvement(
            query.graph,
            model,
            Budget(limit=limit),
            derive_rng(7, "bushy", query.name),
        )
        ratios.append(bushy.cost / linear.cost)
        if bushy.cost < linear.cost * 0.999:
            bushy_wins += 1
    mean_ratio = sum(ratios) / len(ratios)
    return mean_ratio, bushy_wins, len(queries)


def test_bushy_vs_linear(benchmark):
    mean_ratio, bushy_wins, total = benchmark.pedantic(
        run_bushy_ablation, rounds=1, iterations=1
    )
    text = render_matrix(
        "Ablation: bushy II vs linear II at equal budget (static pricing)",
        row_labels=["bushy/linear cost ratio", "bushy strict wins", "queries"],
        column_labels=["value"],
        values=[[mean_ratio], [float(bushy_wins)], [float(total)]],
        row_header="metric",
    )
    save_and_print("ablation_bushy_vs_linear", text)

    # The paper's assumption holds at this scale when the bushy space
    # offers no dramatic advantage (and no dramatic penalty: the bushy
    # search is a superset space explored with the same budget).
    assert 0.5 <= mean_ratio <= 1.5
