"""Figure 4 — all nine methods vs optimization time (default benchmark).

Paper findings reproduced as shape assertions:

* IAI is superior to all other methods over (almost) the entire range;
* the simulated-annealing combinations (SA, SAA, SAK) are clearly
  inferior at the largest limit;
* every method's curve flattens towards 9N^2 (little improvement left).
"""

from repro.core.combinations import PAPER_METHODS
from repro.experiments.figures import figure4
from repro.experiments.report import render_experiment, render_series

from bench_utils import BENCH_SCALE, save_and_print


def run_figure4():
    return figure4(**BENCH_SCALE)


def test_figure4_all_nine_methods(benchmark):
    result = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 4: all nine methods, default benchmark (mean scaled cost)",
        result,
    )
    text += "\n\n" + render_series("Series (time factor: mean scaled cost)", result)
    save_and_print("figure4", text)

    at_nine = {m: result.at(m, 9.0) for m in PAPER_METHODS}
    ranking = sorted(at_nine, key=at_nine.get)

    # IAI at the front (within 5% of the best, usually the outright best).
    assert at_nine["IAI"] <= at_nine[ranking[0]] * 1.05

    # Simulated annealing and its combinations do not win.
    for method in ("SA", "SAA", "SAK"):
        assert at_nine[method] >= at_nine["IAI"]

    # Curves flatten: the 6->9 improvement is small relative to 1.5->3.
    for method in ("IAI", "II", "AGI"):
        early_gain = result.at(method, 1.5) - result.at(method, 3.0)
        late_gain = result.at(method, 6.0) - result.at(method, 9.0)
        assert late_gain <= max(early_gain, 0.05) + 1e-9
