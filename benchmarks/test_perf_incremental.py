"""Microbench: full vs. incremental vs. incremental+pruning evaluation.

The repo's first benchmark trajectory point: every run writes
``results/BENCH_incremental.json`` with evaluations/sec and speedup per
query size, so subsequent PRs can diff the machine-readable series.  One
seeded greedy walk is replayed identically in all three modes (see
:func:`bench_utils.measure_incremental`), making the comparison pure
engine overhead, not workload variance.

The asserted floor mirrors the engine's acceptance criterion: at
``N = 100``, prefix caching with bound pruning — the combination the
search layer actually deploys in iterative improvement — must deliver at
least 3x the evaluations/sec of full re-costing.
"""

import pytest

from bench_utils import measure_incremental, save_and_print, write_bench_json

#: (n_joins, replayed moves): enough moves to dwarf setup/JIT noise while
#: keeping the whole bench in seconds.
SIZES = ((20, 600), (50, 500), (100, 400))

#: Acceptance floor at the largest size (see ISSUE 2) for the engine as
#: the search layer deploys it — prefix caching *with* bound pruning, the
#: combination iterative improvement always uses.
MIN_PRUNED_SPEEDUP_AT_100 = 3.0

#: Regression floor for prefix caching alone (no bound): a random move's
#: first changed position averages ~N/3, so pure prefix reuse buys a
#: smaller constant factor.
MIN_INCREMENTAL_SPEEDUP_AT_100 = 1.3


@pytest.mark.slow
def test_incremental_throughput():
    results = {"benchmark": "incremental-evaluation", "sizes": []}
    lines = [
        "Incremental evaluation throughput (evals/sec, speedup vs full):",
        f"{'N':>5} {'full':>12} {'incremental':>16} {'pruned':>16}",
    ]
    for n_joins, n_moves in SIZES:
        point = measure_incremental(n_joins, n_moves)
        results["sizes"].append(point)
        modes = point["modes"]
        lines.append(
            f"{n_joins:>5} {modes['full']['evaluations_per_sec']:>12.0f} "
            f"{modes['incremental']['evaluations_per_sec']:>10.0f} "
            f"({modes['incremental']['speedup_vs_full']:>4.2f}x) "
            f"{modes['pruned']['evaluations_per_sec']:>10.0f} "
            f"({modes['pruned']['speedup_vs_full']:>4.2f}x)"
        )
    path = write_bench_json("incremental", results)
    lines.append(f"machine-readable series: {path.name}")
    save_and_print("incremental_throughput", "\n".join(lines))

    largest = results["sizes"][-1]
    assert largest["n_joins"] == 100
    for mode, floor in (
        ("pruned", MIN_PRUNED_SPEEDUP_AT_100),
        ("incremental", MIN_INCREMENTAL_SPEEDUP_AT_100),
    ):
        speedup = largest["modes"][mode]["speedup_vs_full"]
        assert speedup >= floor, (
            f"{mode} evaluation only {speedup:.2f}x over full re-costing "
            f"at N=100; the engine promises >= {floor}x"
        )
    # Pruning walks strictly fewer joins than unbounded incremental
    # evaluation on any walk that rejects candidates at all.
    assert (
        largest["modes"]["pruned"]["joins_walked"]
        <= largest["modes"]["incremental"]["joins_walked"]
    )
