"""Ablation — the (cluster, overlap) grid of local improvement (§4.3).

The paper asserts (without a table) that the feasible strategies are, in
decreasing power, (5,4), (4,3), (3,2), (2,1), (2,0), each to be used when
time allows.  This bench measures, per strategy, the improvement achieved
over a fixed start state and the units spent, confirming the power/cost
ordering.
"""

from repro.core.budget import Budget
from repro.core.local_improvement import FEASIBLE_STRATEGIES, local_improve
from repro.core.state import Evaluation, Evaluator
from repro.cost.memory import MainMemoryCostModel
from repro.experiments.report import render_matrix
from repro.plans.validity import random_valid_order
from repro.utils.rng import derive_rng
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark

from bench_utils import BENCH_SCALE, save_and_print


def run_li_ablation():
    queries = generate_benchmark(
        DEFAULT_SPEC, n_values=(15,), queries_per_n=8, seed=BENCH_SCALE["seed"]
    )
    model = MainMemoryCostModel()
    rows = {}
    for cluster, overlap in FEASIBLE_STRATEGIES:
        improvements = []
        units = []
        for query in queries:
            rng = derive_rng(BENCH_SCALE["seed"], query.name, cluster, overlap)
            start_order = random_valid_order(query.graph, rng)
            evaluator = Evaluator(query.graph, model, Budget(limit=1e9))
            start = Evaluation(start_order, evaluator.evaluate(start_order))
            improved = local_improve(
                start, evaluator, cluster, overlap, max_passes=8
            )
            improvements.append(improved.cost / start.cost)
            units.append(evaluator.budget.spent)
        rows[(cluster, overlap)] = (
            sum(improvements) / len(improvements),
            sum(units) / len(units),
        )
    return rows


def test_local_improvement_grid(benchmark):
    rows = benchmark.pedantic(run_li_ablation, rounds=1, iterations=1)
    text = render_matrix(
        "Ablation: local improvement strategies (cost ratio vs units)",
        row_labels=[f"({c},{o})" for c, o in rows],
        column_labels=["final/start", "mean units"],
        values=[[ratio, units] for ratio, units in rows.values()],
        row_header="(c,o)",
    )
    save_and_print("ablation_local_improvement", text)

    ratios = {key: ratio for key, (ratio, _) in rows.items()}
    units = {key: spent for key, (_, spent) in rows.items()}
    # Every strategy improves on the random start.
    assert all(ratio <= 1.0 + 1e-9 for ratio in ratios.values())
    # The strongest strategy improves at least as much as the weakest.
    assert ratios[(5, 4)] <= ratios[(2, 0)] + 1e-9
    # And costs the most work.
    assert units[(5, 4)] == max(units.values())
