"""Table 2 — comparison of the KBZ spanning-tree weight criteria.

Paper (Table 2, mean scaled costs; criterion 3 — join selectivity, the
KBZ86 recommendation — wins at every limit):

    Time     3      4      5
    1.5N^2   5.84   6.67   6.83
    9N^2     5.77   6.54   6.67

Reproduced shape: all three weights leave KBZ alone far from the best
known solutions (scaled costs well above 1 — the paper's "results
regarding the KBZ heuristic are not encouraging"), and the three weights
land within a narrow band of each other.

**Documented deviation** (see EXPERIMENTS.md): the paper finds the
join-selectivity weight (criterion 3) clearly best; in this reproduction
the three weights tie within seed noise, because the default benchmark's
join graphs are nearly acyclic (join cutoff probability 0.01), so the
spanning-tree choice rarely binds — algorithm R's rank ordering decides
almost everything.
"""

from repro.experiments.report import render_experiment
from repro.experiments.tables import table2

from bench_utils import BENCH_SCALE, format_paper_reference, save_and_print

_PAPER_ROWS = [
    "Time     KBZ3   KBZ4   KBZ5",
    "1.5N^2   5.84   6.67   6.83",
    "9N^2     5.77   6.54   6.67",
]


def run_table2():
    return table2(**BENCH_SCALE)


def test_table2_kbz_criteria(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    text = render_experiment(
        "Table 2: KBZ spanning-tree weight criteria (mean scaled cost)", result
    )
    text += "\n\n" + format_paper_reference(_PAPER_ROWS)
    at_nine = {m: result.at(m, 9.0) for m in result.config.methods}
    from repro.experiments.paperdata import TABLE2, ordering_agreement

    rho = ordering_agreement(TABLE2[9.0], at_nine)
    text += (
        f"\n\nSpearman agreement with the paper's 9N^2 ordering: {rho:.2f}"
        "\n(documented deviation: the three weights tie within noise here)"
    )
    save_and_print("table2", text)
    # KBZ alone is mediocre under every weight: scaled costs well above
    # the near-optimal IAI reference baseline of 1.0.
    assert all(value > 1.5 for value in at_nine.values())
    # The recommended weight (criterion 3) stays within the band of the
    # best of the three (the paper's ordering; tied within noise here).
    assert at_nine["KBZ3"] <= min(at_nine.values()) * 1.25
