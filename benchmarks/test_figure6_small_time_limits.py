"""Figure 6 — IAI vs AGI vs II at small time limits.

The paper's finding: **AGI is the method of choice until about 1.8N^2;
after that IAI is better.**  AGI front-loads the cheap augmentation
states (many good plans early) while IAI spends its early budget running
iterative improvement from the first few augmentation states.
"""

from repro.experiments.figures import figure6
from repro.experiments.report import render_experiment

from bench_utils import BENCH_SCALE, save_and_print

_SCALE = dict(BENCH_SCALE, queries_per_n=8)


def run_figure6():
    return figure6(**_SCALE)


def test_figure6_small_time_limits(benchmark):
    result = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 6: small time limits, IAI vs AGI vs II (mean scaled cost)",
        result,
    )
    save_and_print("figure6", text)

    # At the smallest limit AGI is at least competitive with IAI ...
    smallest = min(result.config.time_factors)
    assert result.at("AGI", smallest) <= result.at("IAI", smallest) * 1.05

    # ... and II (random starts only) trails the heuristic-seeded methods
    # at small limits.
    assert result.at("II", smallest) >= min(
        result.at("AGI", smallest), result.at("IAI", smallest)
    )

    # At the anchor limit (9N^2) IAI has caught up or passed AGI.
    assert result.at("IAI", 9.0) <= result.at("AGI", 9.0) * 1.05
