"""Microbench: per-trial overhead of the cardinality-robustness harness.

The harness (:mod:`repro.robustness.harness`) wraps every trial's
``optimize()`` call in machinery — seed derivation, catalog
perturbation, job construction, re-costing under the truth, regret
aggregation, byte-stable rendering.  Its performance contract is that
the wrapper stays cheap relative to the optimization it measures: a
harness run must cost at most :data:`MAX_OVERHEAD_FACTOR` times a bare
loop making the same number of same-budget ``optimize()`` calls.

Min-of-R timing isolates the machinery from scheduler noise.  Every run
writes ``results/BENCH_robustness.json`` so the per-trial overhead is a
machine-readable series CI can diff per-PR.

Run directly, this module is the robustness perf smoke check::

    PYTHONPATH=src python benchmarks/test_perf_robustness.py --smoke [--json]
"""

import time

import pytest

from bench_utils import save_and_print, write_bench_json

from repro.core.optimizer import optimize
from repro.cost.memory import MainMemoryCostModel
from repro.experiments.robustness import robustness_workload
from repro.robustness.harness import RobustnessConfig, run_robustness
from repro.workloads.benchmarks import DEFAULT_SPEC

#: Asserted ceiling: harness seconds / bare-optimize-loop seconds for the
#: same number of equal-budget optimize() calls.  The machinery itself is
#: a few percent; the slack absorbs the (cheaper-graph) reference runs
#: and CI scheduler noise.
MAX_OVERHEAD_FACTOR = 2.0

#: Repeats per mode; the minimum is reported (noise only ever inflates).
REPEATS = 3


def measure_robustness_overhead(
    n_queries: int = 3, n_joins: int = 8, seed: int = 2026
) -> dict:
    """Min-of-R timings: full harness vs a bare loop of the same calls.

    The bare loop makes exactly as many ``optimize()`` invocations as the
    harness schedules (references plus trials), over the same queries at
    the same budget — everything *except* the robustness machinery.
    """
    config = RobustnessConfig(
        methods=("II", "SIMPLI_SQUARED"),
        q_values=(1.0, 5.0),
        n_trials=1,
        time_factor=1.0,
        seed=seed,
    )
    queries = robustness_workload(
        DEFAULT_SPEC, n_queries=n_queries, n_joins=n_joins, seed=seed
    )
    model = MainMemoryCostModel()
    n_jobs = n_queries * len(config.methods) * (1 + len(config.q_values) * config.n_trials)

    def time_harness() -> float:
        t0 = time.perf_counter()
        run_robustness(queries, config, model=model)
        return time.perf_counter() - t0

    def time_bare() -> float:
        t0 = time.perf_counter()
        for index in range(n_jobs):
            query = queries[index % n_queries]
            optimize(
                query,
                method=config.methods[index % len(config.methods)],
                model=model,
                time_factor=config.time_factor,
                units_per_n2=config.units_per_n2,
                seed=seed + index,
            )
        return time.perf_counter() - t0

    timings = {"harness": [], "bare": []}
    # Interleave the modes so drift (thermal, other tenants) hits both.
    for _ in range(REPEATS):
        timings["bare"].append(time_bare())
        timings["harness"].append(time_harness())
    best_bare = min(timings["bare"])
    best_harness = min(timings["harness"])
    return {
        "benchmark": "robustness-harness-overhead",
        "n_queries": n_queries,
        "n_joins": n_joins,
        "n_optimize_calls": n_jobs,
        "seed": seed,
        "repeats": REPEATS,
        "seconds_bare_min": round(best_bare, 6),
        "seconds_harness_min": round(best_harness, 6),
        "seconds_per_trial": round(best_harness / n_jobs, 6),
        "overhead_factor": round(best_harness / best_bare, 4),
        "ceiling": MAX_OVERHEAD_FACTOR,
    }


@pytest.mark.slow
def test_harness_overhead_per_trial():
    point = measure_robustness_overhead()
    path = write_bench_json("robustness", point)
    save_and_print(
        "robustness_overhead",
        "Robustness-harness overhead vs bare optimize loop:\n"
        f"  bare loop ({point['n_optimize_calls']} calls): "
        f"{point['seconds_bare_min']:.4f}s\n"
        f"  harness (same calls)  : {point['seconds_harness_min']:.4f}s "
        f"({point['seconds_per_trial'] * 1000:.1f} ms/trial)\n"
        f"  factor: {point['overhead_factor']:.2f}x "
        f"(ceiling {MAX_OVERHEAD_FACTOR:.1f}x)\n"
        f"machine-readable series: {path.name}",
    )
    assert point["overhead_factor"] < MAX_OVERHEAD_FACTOR, (
        f"robustness harness costs {point['overhead_factor']:.2f}x a bare "
        f"optimize loop over the same calls; the contract allows "
        f"{MAX_OVERHEAD_FACTOR:.1f}x"
    )


def _smoke_main(argv: list[str] | None = None) -> int:
    """Reduced-size smoke: the overhead gate at a CI-friendly size."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Perf smoke check for the robustness harness."
    )
    parser.add_argument("--smoke", action="store_true", help="run reduced bench")
    parser.add_argument("--n-queries", type=int, default=3)
    parser.add_argument("--n-joins", type=int, default=8)
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write results/BENCH_robustness.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke")
    point = measure_robustness_overhead(
        n_queries=args.n_queries, n_joins=args.n_joins
    )
    print(
        f"bare {point['seconds_bare_min']:.4f}s, "
        f"harness {point['seconds_harness_min']:.4f}s, "
        f"factor {point['overhead_factor']:.2f}x, "
        f"{point['seconds_per_trial'] * 1000:.1f} ms/trial"
    )
    if args.json:
        path = write_bench_json("robustness", point)
        print(f"wrote {path}")
    if point["overhead_factor"] >= MAX_OVERHEAD_FACTOR:
        print("SMOKE FAIL: harness overhead above ceiling")
        return 1
    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    raise SystemExit(_smoke_main())
