"""Microbench: wall-clock speedup of the parallel multi-start orchestrator.

Times ``optimize(..., restarts=8)`` on an N = 100 query at worker counts
1, 2, and 4, writes the machine-readable series to
``results/BENCH_parallel.json``, and — because the orchestrator's whole
contract is that parallelism is *free* determinism-wise — asserts that
every worker count produced a bit-identical ``OptimizationResult``.

The speedup acceptance floor (>= 2x at 4 workers) is only meaningful on
hardware that actually has 4 cores; the recorded JSON always carries
``cpu_count`` so a reader can judge the numbers honestly, and the
assertion is skipped (not faked) when fewer than 4 CPUs are available.

Run directly, this module is the parallel perf smoke check::

    PYTHONPATH=src python benchmarks/test_perf_parallel.py --smoke [--json]

which runs a reduced size (N = 40) and only checks determinism plus that
the parallel path completes — CI-friendly on any core count.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from bench_utils import save_and_print, write_bench_json

#: The acceptance configuration from ISSUE 3: 8 restarts at N = 100.
N_JOINS = 100
RESTARTS = 8
WORKER_COUNTS = (1, 2, 4)
TIME_FACTOR = 6.0
SEED = 2026

MIN_SPEEDUP_AT_4_WORKERS = 2.0


def measure_parallel(
    n_joins: int = N_JOINS,
    restarts: int = RESTARTS,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    time_factor: float = TIME_FACTOR,
    seed: int = SEED,
) -> dict:
    """Time the orchestrator at several worker counts; verify bit-identity.

    Returns a dict ready for :func:`bench_utils.write_bench_json`.
    """
    from repro.core.optimizer import optimize
    from repro.workloads.benchmarks import DEFAULT_SPEC
    from repro.workloads.generator import generate_query

    query = generate_query(DEFAULT_SPEC, n_joins=n_joins, seed=seed)
    results = {}
    timings = {}
    for workers in worker_counts:
        t0 = time.perf_counter()
        results[workers] = optimize(
            query,
            method="II",
            seed=seed,
            time_factor=time_factor,
            workers=workers,
            restarts=restarts,
        )
        timings[workers] = time.perf_counter() - t0
    serial = timings[worker_counts[0]]
    reference = results[worker_counts[0]]
    return {
        "benchmark": "parallel-multi-start",
        "n_joins": n_joins,
        "restarts": restarts,
        "time_factor": time_factor,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "cost": reference.cost,
        "units_spent": reference.units_spent,
        "bit_identical": all(
            results[w] == reference for w in worker_counts
        ),
        "workers": {
            str(workers): {
                "seconds": round(timings[workers], 4),
                "speedup_vs_serial": round(serial / timings[workers], 3)
                if timings[workers] > 0
                else float("inf"),
            }
            for workers in worker_counts
        },
    }


@pytest.mark.slow
def test_parallel_speedup():
    point = measure_parallel()
    path = write_bench_json("parallel", point)
    lines = [
        f"Parallel multi-start: {point['restarts']} restarts at "
        f"N={point['n_joins']} ({point['cpu_count']} CPU(s) available):",
    ]
    for workers, stats in point["workers"].items():
        lines.append(
            f"  workers={workers}: {stats['seconds']:>8.3f}s "
            f"({stats['speedup_vs_serial']:.2f}x vs serial)"
        )
    lines.append(f"machine-readable series: {path.name}")
    save_and_print("parallel_speedup", "\n".join(lines))

    # Determinism is non-negotiable on any hardware.
    assert point["bit_identical"]

    # Wall-clock speedup needs the cores to exist.  Never fake it: the
    # JSON above records whatever this machine really did.
    if (os.cpu_count() or 1) < 4:
        pytest.skip(
            f"speedup floor needs >= 4 CPUs (have {os.cpu_count()}); "
            "timings recorded in BENCH_parallel.json"
        )
    assert (
        point["workers"]["4"]["speedup_vs_serial"] >= MIN_SPEEDUP_AT_4_WORKERS
    )


def _smoke_main(argv: list[str] | None = None) -> int:
    """Reduced-size smoke: determinism and orchestration health per PR."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Perf smoke check for the parallel orchestrator."
    )
    parser.add_argument("--smoke", action="store_true", help="run reduced bench")
    parser.add_argument("--n-joins", type=int, default=40)
    parser.add_argument("--restarts", type=int, default=4)
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write results/BENCH_parallel_smoke.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke")
    point = measure_parallel(
        n_joins=args.n_joins,
        restarts=args.restarts,
        worker_counts=(1, 2),
        time_factor=1.5,
    )
    for workers, stats in point["workers"].items():
        print(
            f"workers={workers}: {stats['seconds']:.3f}s "
            f"({stats['speedup_vs_serial']:.2f}x vs serial)"
        )
    if args.json:
        path = write_bench_json("parallel_smoke", point)
        print(f"wrote {path}")
    if not point["bit_identical"]:
        print("SMOKE FAIL: parallel result differs from serial")
        return 1
    print(f"SMOKE OK (cpu_count={point['cpu_count']})")
    return 0


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    raise SystemExit(_smoke_main())
