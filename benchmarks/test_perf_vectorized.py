"""Microbench: vectorized batch costing vs. scalar full evaluation.

Times :meth:`repro.cost.vectorized.ArrayContext.batch_costs` against the
scalar oracle (``model.plan_cost`` per candidate) on identical candidate
batches, for both cost models, and writes the machine-readable series to
``results/BENCH_vectorized.json`` so subsequent PRs can diff it.  A
parity spot-check runs inside the measurement: the kernel only counts as
fast if it is also *right* (bitwise, per the module's contract).

The asserted floor mirrors the tentpole's acceptance criterion: at
``N = 100`` the kernel must deliver at least 10x the evaluations/sec of
scalar full re-costing.  Run directly, this module is the CPU-gated CI
smoke check::

    PYTHONPATH=src python benchmarks/test_perf_vectorized.py --smoke [--json]

which uses a reduced batch and a 2x floor so shared CI runners with
noisy neighbours do not flake the gate (the 10x claim is re-asserted by
the slow suite on quiet hardware).
"""

import time

import pytest

from bench_utils import save_and_print, write_bench_json

#: (n_joins, batch size): batches big enough to amortise the per-batch
#: constant (array conversion, one gather per join position).
SIZES = ((20, 512), (50, 512), (100, 512))

#: Acceptance floor at the largest size: the whole point of the
#: struct-of-arrays kernel is an order of magnitude over the scalar walk.
MIN_BATCH_SPEEDUP_AT_100 = 10.0

#: Smoke floor for shared CI runners (reduced size, noisy neighbours).
SMOKE_FLOOR = 2.0


def measure_vectorized(
    n_joins: int, batch_size: int, seed: int = 2026, repeats: int = 5
) -> dict:
    """Time scalar full costing vs. the batch kernel on one batch.

    Both modes price the identical ``batch_size`` candidates ``repeats``
    times; the first three rows are cross-checked bitwise against the
    scalar oracle on every call, so a silently wrong kernel fails here
    rather than benching as a speedup.
    """
    import random

    from repro.cost.disk import DiskCostModel
    from repro.cost.memory import MainMemoryCostModel
    from repro.cost.vectorized import ArrayContext
    from repro.plans.validity import random_valid_order
    from repro.workloads.benchmarks import DEFAULT_SPEC
    from repro.workloads.generator import generate_query

    graph = generate_query(DEFAULT_SPEC, n_joins=n_joins, seed=seed).graph
    rng = random.Random(seed)
    rows = [
        random_valid_order(graph, rng).positions for _ in range(batch_size)
    ]

    models = {}
    for model in (MainMemoryCostModel(), DiskCostModel()):
        context = ArrayContext(graph, model)

        t0 = time.perf_counter()
        for _ in range(repeats):
            scalar_costs = [model.plan_cost(row, graph) for row in rows]
        scalar_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(repeats):
            batch_costs, _saturated = context.batch_costs(
                rows, validate=False
            )
        batch_seconds = time.perf_counter() - t0

        for row in range(3):
            assert float(batch_costs[row]) == scalar_costs[row], (
                f"kernel diverges from plan_cost on row {row} "
                f"(N={n_joins}, model={model.name})"
            )

        evaluations = batch_size * repeats
        models[model.name] = {
            "scalar_seconds": round(scalar_seconds, 6),
            "batch_seconds": round(batch_seconds, 6),
            "evaluations": evaluations,
            "scalar_evals_per_sec": round(evaluations / scalar_seconds, 1)
            if scalar_seconds > 0
            else float("inf"),
            "batch_evals_per_sec": round(evaluations / batch_seconds, 1)
            if batch_seconds > 0
            else float("inf"),
            "speedup_vs_scalar": round(scalar_seconds / batch_seconds, 3)
            if batch_seconds > 0
            else float("inf"),
            "vectorized": context.vectorized,
        }
    return {
        "n_joins": n_joins,
        "batch_size": batch_size,
        "repeats": repeats,
        "seed": seed,
        "models": models,
    }


@pytest.mark.slow
def test_vectorized_throughput():
    from repro.cost.vectorized import HAVE_NUMPY

    if not HAVE_NUMPY:
        pytest.skip("numpy not installed; the kernel is the scalar fallback")
    results = {"benchmark": "vectorized-batch-costing", "sizes": []}
    lines = [
        "Batch kernel throughput (evals/sec, speedup vs scalar full):",
        f"{'N':>5} {'model':>8} {'scalar':>12} {'batched':>14}",
    ]
    for n_joins, batch_size in SIZES:
        point = measure_vectorized(n_joins, batch_size)
        results["sizes"].append(point)
        for name, stats in point["models"].items():
            lines.append(
                f"{n_joins:>5} {name:>8} "
                f"{stats['scalar_evals_per_sec']:>12.0f} "
                f"{stats['batch_evals_per_sec']:>10.0f} "
                f"({stats['speedup_vs_scalar']:>5.2f}x)"
            )
    path = write_bench_json("vectorized", results)
    lines.append(f"machine-readable series: {path.name}")
    save_and_print("vectorized_throughput", "\n".join(lines))

    largest = results["sizes"][-1]
    assert largest["n_joins"] == 100
    for name, stats in largest["models"].items():
        speedup = stats["speedup_vs_scalar"]
        assert speedup >= MIN_BATCH_SPEEDUP_AT_100, (
            f"batch kernel only {speedup:.2f}x over scalar full costing "
            f"at N=100 ({name} model); the kernel promises "
            f">= {MIN_BATCH_SPEEDUP_AT_100}x"
        )


def _smoke_main(argv=None):
    """The CI smoke check: one reduced size, a CPU-gated floor."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Perf smoke check for the vectorized batch kernel."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the reduced kernel microbench (the only mode)",
    )
    parser.add_argument(
        "--n-joins", type=int, default=50, help="query size (default 50)"
    )
    parser.add_argument(
        "--batch", type=int, default=256, help="batch size (default 256)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write results/BENCH_vectorized_smoke.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke")

    from repro.cost.vectorized import HAVE_NUMPY

    if not HAVE_NUMPY:
        print("SMOKE SKIP: numpy not installed (scalar fallback in use)")
        return 0
    result = measure_vectorized(args.n_joins, args.batch, repeats=3)
    worst = None
    for name, stats in result["models"].items():
        print(
            f"{name:>8}: scalar {stats['scalar_evals_per_sec']:>10.1f} "
            f"-> batched {stats['batch_evals_per_sec']:>10.1f} evals/s "
            f"({stats['speedup_vs_scalar']:.2f}x)"
        )
        speedup = stats["speedup_vs_scalar"]
        if worst is None or speedup < worst:
            worst = speedup
    if args.json:
        path = write_bench_json("vectorized_smoke", result)
        print(f"wrote {path}")
    if worst < SMOKE_FLOOR:
        print(
            f"SMOKE FAIL: kernel only {worst:.2f}x vs scalar "
            f"(floor {SMOKE_FLOOR}x)"
        )
        return 1
    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(_smoke_main())
