"""Perf bench: pruning power of the exact branch-and-bound.

The branch-and-bound (:mod:`repro.core.exact`) promises bitwise-exact
optima; its performance contract is that bound + dominance pruning
removes the overwhelming majority of the work exhaustive enumeration
would do.  This bench makes that ratio a number: for each seeded query
it counts the cost evaluations full enumeration needs — every valid
order prefix of length ≥ 2 charges one evaluation, counted exactly by a
subset DP over prefix *sets* (for a connected graph, prefix validity is
mask-determined, so ``f[mask] = Σ f[mask \\ {v}]`` over removable last
relations counts ordered valid prefixes without materializing them) —
and divides by the evaluations the search actually charged.

Both numbers are seed-determined (no timing involved), so the asserted
floor :data:`MIN_PRUNING_RATIO` is a hard regression gate, not a noisy
threshold: observed ratios on these workloads are 29–550x.  Every run
writes ``results/BENCH_exact.json`` so the per-query series is
machine-diffable per PR.

Run directly, this module is the exact-search smoke check::

    PYTHONPATH=src python benchmarks/test_perf_exact.py --smoke [--json]
"""

import time

import pytest

from bench_utils import save_and_print, write_bench_json

from repro.core.exact import exact_optimum
from repro.cost.disk import DiskCostModel
from repro.cost.memory import MainMemoryCostModel
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

#: Asserted floor on exhaustive-evaluations / branch-and-bound
#: evaluations, per query.  Deterministic — a drop below this means the
#: pruning rules themselves regressed.
MIN_PRUNING_RATIO = 10.0

#: (n_joins, seed) per measured query; smoke mode uses the first two.
WORKLOAD = ((9, 0), (10, 0), (10, 1), (11, 2))


def count_exhaustive_evaluations(graph) -> int:
    """Cost evaluations exhaustive enumeration would charge.

    One per valid prefix of length ≥ 2 (each such prefix prices exactly
    one new join).  Counted by subset DP: connected graphs make prefix
    validity a function of the prefix *set*, so ordered prefixes of a
    mask are ``Σ f[mask without v]`` over members ``v`` still leaving a
    valid shorter prefix.
    """
    n = graph.n_relations
    neighbor_masks = [0] * n
    for vertex in range(n):
        for neighbor in graph.neighbors(vertex):
            neighbor_masks[vertex] |= 1 << neighbor
    counts = {1 << vertex: 1 for vertex in range(n)}
    by_size: list[list[int]] = [[] for _ in range(n + 1)]
    for mask in range(1, 1 << n):
        by_size[bin(mask).count("1")].append(mask)
    total = 0
    for size in range(2, n + 1):
        for mask in by_size[size]:
            orderings = 0
            for vertex in range(n):
                bit = 1 << vertex
                if mask & bit and neighbor_masks[vertex] & (mask ^ bit):
                    orderings += counts.get(mask ^ bit, 0)
            if orderings:
                counts[mask] = orderings
                total += orderings
    return total


def measure_pruning(workload=WORKLOAD, seed_base: int = 0) -> dict:
    """Per-query pruning ratios for both cost models, plus wall times."""
    points = []
    for n_joins, seed in workload:
        query = generate_query(DEFAULT_SPEC, n_joins, seed)
        exhaustive = count_exhaustive_evaluations(query.graph)
        for model_name, model in (
            ("memory", MainMemoryCostModel()),
            ("disk", DiskCostModel()),
        ):
            start = time.perf_counter()
            result = exact_optimum(
                query.graph, model, max_relations=18, seed=seed_base
            )
            elapsed = time.perf_counter() - start
            points.append(
                {
                    "n_joins": n_joins,
                    "seed": seed,
                    "model": model_name,
                    "exhaustive_evaluations": exhaustive,
                    "bnb_evaluations": result.n_cost_evaluations,
                    "nodes_expanded": result.nodes_expanded,
                    "nodes_pruned_bound": result.nodes_pruned_bound,
                    "nodes_pruned_dominated": result.nodes_pruned_dominated,
                    "pruning_ratio": round(
                        exhaustive / result.n_cost_evaluations, 2
                    ),
                    "seconds": round(elapsed, 4),
                    "proven": result.proven,
                }
            )
    return {
        "benchmark": "exact-bnb-pruning",
        "floor": MIN_PRUNING_RATIO,
        "points": points,
    }


def _render(payload: dict) -> str:
    lines = ["Exact branch-and-bound pruning vs exhaustive enumeration:"]
    for point in payload["points"]:
        lines.append(
            f"  N={point['n_joins']} seed={point['seed']} "
            f"{point['model']:<6}: {point['exhaustive_evaluations']:>9,} "
            f"exhaustive vs {point['bnb_evaluations']:>6,} charged "
            f"= {point['pruning_ratio']:>6.1f}x  "
            f"({point['seconds']:.3f}s, proven={point['proven']})"
        )
    lines.append(f"asserted floor: {payload['floor']:.1f}x per query")
    return "\n".join(lines)


@pytest.mark.slow
def test_bnb_prunes_exhaustive_search():
    payload = measure_pruning()
    path = write_bench_json("exact", payload)
    save_and_print(
        "exact_pruning", _render(payload) + f"\nmachine-readable: {path.name}"
    )
    for point in payload["points"]:
        assert point["proven"], point
        assert point["pruning_ratio"] >= MIN_PRUNING_RATIO, (
            f"N={point['n_joins']} seed={point['seed']} {point['model']}: "
            f"pruning ratio {point['pruning_ratio']:.1f}x fell below the "
            f"{MIN_PRUNING_RATIO:.1f}x floor — the bound/dominance rules "
            "have regressed"
        )


def _smoke_main(argv: list[str] | None = None) -> int:
    """Reduced-size smoke: two queries, same ratio gate, CI-friendly."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Perf smoke check for the exact branch-and-bound."
    )
    parser.add_argument("--smoke", action="store_true", help="run reduced bench")
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write results/BENCH_exact.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke")
    payload = measure_pruning(workload=WORKLOAD[:2])
    print(_render(payload))
    if args.json:
        path = write_bench_json("exact_smoke", payload)
        print(f"wrote {path}")
    failed = [
        point
        for point in payload["points"]
        if not point["proven"] or point["pruning_ratio"] < MIN_PRUNING_RATIO
    ]
    if failed:
        print(f"SMOKE FAIL: {len(failed)} point(s) below the pruning floor")
        return 1
    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    raise SystemExit(_smoke_main())
