"""Microbench: detlint summary-cache speedup, warm vs. cold.

Times a full interprocedural analysis of this repository's real ``src/``
tree twice through :class:`repro.analysis.engine.Analyzer` — once with
an empty summary cache (cold: parse + extract + fixpoint) and once
against the cache the cold run wrote (warm: content-hash lookups +
fixpoint) — and writes the series to ``results/BENCH_detlint.json``.

A correctness check runs inside the measurement: the warm run only
counts as fast if its report is byte-identical to the cold run's, which
is the cache's soundness contract (pass 1 is a pure function of file
bytes; pass 2 is always recomputed).

The asserted floor mirrors the acceptance criterion: the warm run must
be at least 5x faster than cold.  Run directly, this module is the
CPU-gated CI smoke check::

    PYTHONPATH=src python benchmarks/test_perf_detlint.py --smoke [--json]

which keeps a reduced 2x floor so shared CI runners with noisy
neighbours do not flake the gate (the 5x claim is re-asserted by the
slow suite on quiet hardware).
"""

import tempfile
import time
from dataclasses import replace
from pathlib import Path

import pytest

from bench_utils import save_and_print, write_bench_json

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Acceptance floor: skipping parse + extraction for every unchanged
#: file must dominate the (always recomputed) global fixpoint.
MIN_WARM_SPEEDUP = 5.0

#: Smoke floor for shared CI runners (timer noise on a ~0.1 s warm run).
SMOKE_FLOOR = 2.0


def measure_detlint(repeats: int = 3) -> dict:
    """Time cold vs. warm analysis of the real ``src/`` tree.

    The cache is redirected into a throwaway directory so the bench
    never touches the developer's ``.detlint-cache.json``.  Cold is
    re-measured with the cache file deleted each repeat; warm reuses
    the file the last cold run wrote.  Best-of-``repeats`` is reported
    for both, which is the standard defence against one-off scheduler
    noise in sub-second measurements.
    """
    from repro.analysis.config import load_config
    from repro.analysis.engine import Analyzer
    from repro.analysis.reporting import render_json

    base = load_config(start=str(REPO_ROOT))
    with tempfile.TemporaryDirectory(prefix="detlint-bench-") as scratch:
        cache_path = Path(scratch) / "cache.json"
        config = replace(base, cache=str(cache_path))

        cold_seconds = []
        cold_result = None
        for _ in range(repeats):
            if cache_path.exists():
                cache_path.unlink()
            t0 = time.perf_counter()
            cold_result = Analyzer(config, baseline=None).run()
            cold_seconds.append(time.perf_counter() - t0)
        assert cold_result is not None
        assert cold_result.cache_hits == 0

        warm_seconds = []
        warm_result = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            warm_result = Analyzer(config, baseline=None).run()
            warm_seconds.append(time.perf_counter() - t0)
        assert warm_result is not None

        # Soundness before speed: a cache that changes the report is a
        # bug, not a speedup.
        assert warm_result.cache_misses == 0
        assert warm_result.cache_hits == cold_result.cache_misses
        assert render_json(warm_result) == render_json(cold_result), (
            "warm (cached) report diverges from cold"
        )

        cold = min(cold_seconds)
        warm = min(warm_seconds)
        return {
            "tree": "src",
            "files_checked": cold_result.files_checked,
            "repeats": repeats,
            "cold_seconds": round(cold, 6),
            "warm_seconds": round(warm, 6),
            "speedup_warm_vs_cold": round(cold / warm, 3)
            if warm > 0
            else float("inf"),
            "cache_entries": cold_result.cache_misses,
            "open_findings": len(cold_result.unsuppressed),
            "suppressed_findings": len(cold_result.suppressed),
        }


@pytest.mark.slow
def test_detlint_cache_speedup():
    result = measure_detlint()
    lines = [
        "detlint summary-cache speedup (real src/ tree):",
        f"  files checked : {result['files_checked']}",
        f"  cold (no cache): {result['cold_seconds'] * 1000:>8.1f} ms",
        f"  warm (cached)  : {result['warm_seconds'] * 1000:>8.1f} ms",
        f"  speedup        : {result['speedup_warm_vs_cold']:.2f}x",
    ]
    path = write_bench_json("detlint", result)
    lines.append(f"machine-readable series: {path.name}")
    save_and_print("detlint_cache", "\n".join(lines))

    assert result["files_checked"] > 50
    speedup = result["speedup_warm_vs_cold"]
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm run only {speedup:.2f}x faster than cold; the summary "
        f"cache promises >= {MIN_WARM_SPEEDUP}x"
    )


def _smoke_main(argv=None):
    """The CI smoke check: same measurement, a CPU-gated floor."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Perf smoke check for the detlint summary cache."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the cache microbench (the only mode)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats (default 3)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write results/BENCH_detlint_smoke.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke")

    result = measure_detlint(repeats=args.repeats)
    print(
        f"detlint over {result['files_checked']} file(s): "
        f"cold {result['cold_seconds'] * 1000:.1f} ms -> "
        f"warm {result['warm_seconds'] * 1000:.1f} ms "
        f"({result['speedup_warm_vs_cold']:.2f}x)"
    )
    if args.json:
        path = write_bench_json("detlint_smoke", result)
        print(f"wrote {path}")
    if result["speedup_warm_vs_cold"] < SMOKE_FLOOR:
        print(
            f"SMOKE FAIL: warm only {result['speedup_warm_vs_cold']:.2f}x "
            f"vs cold (floor {SMOKE_FLOOR}x)"
        )
        return 1
    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(_smoke_main())
