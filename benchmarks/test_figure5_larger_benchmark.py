"""Figure 5 — the top five methods on the larger benchmark.

The paper extends the default benchmark from N = 10..50 to N = 10..100
(500 queries) and finds the method ordering unchanged: IAI still leads.
Here the "larger" benchmark stretches the N range (up to N = 50)
relative to Figure 4's bench scale.

**Documented deviation** (see EXPERIMENTS.md): under the scaled-down
work-unit budget, IAI's final-limit lead narrows to a tie band — at the
largest N it does not finish improving all of its augmentation starts
within the budget, which in the paper's much richer CPU-time budget it
does.  The assertions therefore check a tie band rather than a strict
win; running with ``units_per_n2=40`` restores IAI's outright lead.
"""

from repro.experiments.figures import figure5
from repro.experiments.report import render_experiment

from bench_utils import BENCH_SCALE, save_and_print

_SCALE = dict(BENCH_SCALE, n_values=(20, 35, 50), queries_per_n=4)


def run_figure5():
    return figure5(**_SCALE)


def test_figure5_larger_benchmark(benchmark):
    result = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    text = render_experiment(
        "Figure 5: top five methods, larger benchmark (mean scaled cost)",
        result,
    )
    save_and_print("figure5", text)

    at_nine = {m: result.at(m, 9.0) for m in result.config.methods}
    best = min(at_nine.values())
    # Ordering preserved on the larger benchmark: the top five stay in a
    # tie band at 9N^2 with IAI inside it (see the deviation note above).
    assert at_nine["IAI"] <= best * 1.10
    assert all(value <= best * 1.25 for value in at_nine.values())
    # Every curve flattened: the final improvement step is small.
    for method in result.config.methods:
        assert result.at(method, 6.0) - result.at(method, 9.0) <= 0.15
