"""Table 1 — comparison of the augmentation ``chooseNext`` criteria.

Paper (Table 1, mean scaled costs; criterion 3 wins at every limit):

    Time     1      2      3      4      5
    1.5N^2   6.38   4.74   3.09   5.47   5.84
    3N^2     6.31   4.51   2.88   5.35   5.69
    6N^2     6.14   4.18   2.66   5.25   5.54
    9N^2     6.07   4.07   2.64   5.21   5.54

Reproduced shape: criterion 3 (min join selectivity) at or near the best;
criterion 1 (min cardinality) clearly the worst; criteria 4/5 in between.
"""

from repro.experiments.report import render_experiment
from repro.experiments.tables import table1

from bench_utils import BENCH_SCALE, format_paper_reference, save_and_print

_PAPER_ROWS = [
    "Time     AUG1   AUG2   AUG3   AUG4   AUG5",
    "1.5N^2   6.38   4.74   3.09   5.47   5.84",
    "9N^2     6.07   4.07   2.64   5.21   5.54",
]


def run_table1():
    return table1(**BENCH_SCALE)


def test_table1_augmentation_criteria(benchmark):
    from repro.experiments.paperdata import TABLE1, ordering_agreement

    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    text = render_experiment(
        "Table 1: augmentation chooseNext criteria (mean scaled cost)", result
    )
    text += "\n\n" + format_paper_reference(_PAPER_ROWS)
    at_nine = {m: result.at(m, 9.0) for m in result.config.methods}
    rho = ordering_agreement(TABLE1[9.0], at_nine)
    text += f"\n\nSpearman agreement with the paper's 9N^2 ordering: {rho:.2f}"
    save_and_print("table1", text)

    # The column ordering correlates strongly with the paper's.
    assert rho >= 0.6
    # Shape assertions (the paper's qualitative findings): criterion 3
    # (min join selectivity) is the best criterion ...
    assert at_nine["AUG3"] == min(at_nine.values())
    # ... and criterion 1 (smallest cardinality) is the worst overall.
    assert at_nine["AUG1"] == max(at_nine.values())
