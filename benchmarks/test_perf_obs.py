"""Microbench: cost of the *disabled* observability hooks on the hot path.

The trace layer's performance contract (docs/observability.md) is that
the default no-op backend costs one attribute check per hook.  This
bench proves it: the same seeded greedy walk is replayed through the
shipped :class:`~repro.core.state.DeltaEvaluator` (whose hot methods
carry ``if self.tracer.enabled:`` guards) and through a guard-free
variant with otherwise identical bodies.  Min-of-R timing isolates the
guard from scheduler noise; the asserted ceiling is <2% overhead.

Every run writes ``results/BENCH_obs.json`` so the overhead is a
machine-readable series CI can diff per-PR.

Run directly, this module is the obs perf smoke check::

    PYTHONPATH=src python benchmarks/test_perf_obs.py --smoke [--json]
"""

import random
import time
from pathlib import Path

import pytest

from bench_utils import save_and_print, write_bench_json

from repro.core.budget import Budget
from repro.core.state import PER_PLAN, DeltaEvaluator
from repro.core.moves import MoveSet
from repro.cost.memory import MainMemoryCostModel
from repro.plans.validity import random_valid_order
from repro.workloads.benchmarks import DEFAULT_SPEC
from repro.workloads.generator import generate_query

#: The asserted ceiling on disabled-hook overhead (docs/observability.md).
MAX_DISABLED_OVERHEAD = 0.02

#: Repeats per mode; the minimum is reported (scheduler noise only ever
#: inflates a timing, so min-of-R converges on the true cost).
REPEATS = 7


class GuardFreeDeltaEvaluator(DeltaEvaluator):
    """The counterfactual baseline: the hot methods minus the obs guards.

    ``evaluate_candidate``/``evaluate`` are byte-for-byte the shipped
    bodies (see :class:`~repro.core.state.DeltaEvaluator`) with the
    ``if self.tracer.enabled:`` blocks deleted — what the engine looked
    like before instrumentation.  Any drift in the shipped bodies shows
    up here as a bogus overhead number, so keep the copies in sync.
    """

    def evaluate(self, order):
        if self.charge_mode == PER_PLAN:
            self.budget.charge(float(self.graph.n_joins))
            cost, joins = self.engine.rebase(order.positions)
        else:
            self._require_budget()
            cost, joins = self.engine.rebase(order.positions)
            self.budget.charge(max(1.0, float(joins)))
        self.n_joins_evaluated += joins
        self.n_evaluations += 1
        self._record(order, cost)
        self._check_target()
        return cost

    def evaluate_candidate(self, order, upper_bound=None, first_changed=None):
        if self.charge_mode == PER_PLAN:
            self.budget.charge(float(self.graph.n_joins))
            cost, joins = self.engine.evaluate(
                order.positions, self._safe_bound(upper_bound), first_changed
            )
        else:
            self._require_budget()
            cost, joins = self.engine.evaluate(
                order.positions, self._safe_bound(upper_bound), first_changed
            )
            self.budget.charge(max(1.0, float(joins)))
        self.n_joins_evaluated += joins
        self.n_evaluations += 1
        if cost is None:
            self.n_pruned += 1
        else:
            self._record(order, cost)
        self._check_target()
        return cost


def _prepare_walk(n_joins: int, n_moves: int, seed: int):
    """One seeded greedy walk, pre-generated so every mode replays it."""
    graph = generate_query(DEFAULT_SPEC, n_joins=n_joins, seed=seed).graph
    model = MainMemoryCostModel()
    move_set = MoveSet()
    rng = random.Random(seed)
    current = random_valid_order(graph, rng)
    cost = model.plan_cost(current, graph)
    steps = []  # (current, candidate, first_changed, incumbent_cost)
    for _ in range(n_moves):
        move, candidate = move_set.random_valid_move(current, graph, rng)
        steps.append((current, candidate, move.first_changed, cost))
        candidate_cost = model.plan_cost(candidate, graph)
        if candidate_cost < cost:
            current, cost = candidate, candidate_cost
    return graph, model, steps


def _time_walk(evaluator_cls, graph, model, steps) -> float:
    """Seconds for one replay of the walk through ``evaluator_cls``."""
    evaluator = evaluator_cls(
        graph, model, Budget(float("inf")), charge_mode=PER_PLAN
    )
    t0 = time.perf_counter()
    for current, candidate, first_changed, incumbent in steps:
        evaluator.prime(current)
        evaluator.evaluate_candidate(candidate, incumbent, first_changed)
    return time.perf_counter() - t0


def measure_obs_overhead(
    n_joins: int = 100, n_moves: int = 400, seed: int = 2026
) -> dict:
    """Min-of-R timings: shipped (disabled guards) vs guard-free engine."""
    graph, model, steps = _prepare_walk(n_joins, n_moves, seed)
    timings = {"instrumented": [], "baseline": []}
    # Interleave the modes so drift (thermal, other tenants) hits both.
    for _ in range(REPEATS):
        timings["baseline"].append(
            _time_walk(GuardFreeDeltaEvaluator, graph, model, steps)
        )
        timings["instrumented"].append(
            _time_walk(DeltaEvaluator, graph, model, steps)
        )
    best_base = min(timings["baseline"])
    best_inst = min(timings["instrumented"])
    overhead = best_inst / best_base - 1.0
    return {
        "benchmark": "obs-disabled-overhead",
        "n_joins": n_joins,
        "n_moves": n_moves,
        "seed": seed,
        "repeats": REPEATS,
        "seconds_baseline_min": round(best_base, 6),
        "seconds_instrumented_min": round(best_inst, 6),
        "overhead_fraction": round(overhead, 5),
        "ceiling": MAX_DISABLED_OVERHEAD,
    }


def _verify_equivalence(n_joins: int = 30, n_moves: int = 120) -> None:
    """The guard-free copy must still compute the identical walk."""
    graph, model, steps = _prepare_walk(n_joins, n_moves, seed=7)
    outputs = []
    for evaluator_cls in (DeltaEvaluator, GuardFreeDeltaEvaluator):
        evaluator = evaluator_cls(
            graph, model, Budget(float("inf")), charge_mode=PER_PLAN
        )
        costs = []
        for current, candidate, first_changed, incumbent in steps:
            evaluator.prime(current)
            costs.append(
                evaluator.evaluate_candidate(candidate, incumbent, first_changed)
            )
        outputs.append((costs, evaluator.n_joins_evaluated, evaluator.n_pruned))
    assert outputs[0] == outputs[1], (
        "guard-free baseline diverged from the shipped evaluator; "
        "its copied bodies have drifted — re-sync them with "
        "repro.core.state.DeltaEvaluator"
    )


@pytest.mark.slow
def test_disabled_tracer_overhead():
    _verify_equivalence()
    point = measure_obs_overhead()
    path = write_bench_json("obs", point)
    save_and_print(
        "obs_overhead",
        "Disabled-tracer overhead on the incremental hot path:\n"
        f"  baseline     (no guards): {point['seconds_baseline_min']:.4f}s\n"
        f"  instrumented (disabled) : {point['seconds_instrumented_min']:.4f}s\n"
        f"  overhead: {point['overhead_fraction'] * 100:.2f}% "
        f"(ceiling {MAX_DISABLED_OVERHEAD * 100:.0f}%)\n"
        f"machine-readable series: {path.name}",
    )
    assert point["overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
        f"disabled observability hooks cost "
        f"{point['overhead_fraction'] * 100:.2f}% on the incremental hot "
        f"path; the contract (docs/observability.md) allows "
        f"{MAX_DISABLED_OVERHEAD * 100:.0f}%"
    )


def _smoke_main(argv: list[str] | None = None) -> int:
    """Reduced-size smoke: the overhead gate at a CI-friendly size."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Perf smoke check for the observability layer."
    )
    parser.add_argument("--smoke", action="store_true", help="run reduced bench")
    parser.add_argument("--n-joins", type=int, default=50)
    parser.add_argument("--n-moves", type=int, default=200)
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write results/BENCH_obs.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke")
    _verify_equivalence()
    point = measure_obs_overhead(n_joins=args.n_joins, n_moves=args.n_moves)
    print(
        f"baseline {point['seconds_baseline_min']:.4f}s, "
        f"instrumented {point['seconds_instrumented_min']:.4f}s, "
        f"overhead {point['overhead_fraction'] * 100:.2f}%"
    )
    if args.json:
        path = write_bench_json("obs", point)
        print(f"wrote {path}")
    if point["overhead_fraction"] >= MAX_DISABLED_OVERHEAD:
        print("SMOKE FAIL: disabled-tracer overhead above ceiling")
        return 1
    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    raise SystemExit(_smoke_main())
