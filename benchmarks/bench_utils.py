"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at a
reduced-but-shape-preserving scale, prints the same rows/series the paper
reports, and writes the rendering to ``benchmarks/results/`` so the output
survives pytest's capture.  Machine-readable series go through
:func:`write_bench_json` into ``benchmarks/results/BENCH_<name>.json`` so
successive PRs can diff them.

Run directly, this module is the perf smoke check::

    PYTHONPATH=src python benchmarks/bench_utils.py --smoke [--json]

which times full vs. incremental vs. incremental+pruning evaluation on a
small query and (with ``--json``) writes ``BENCH_incremental_smoke.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Scaled-down experiment size shared by the benches.  The paper uses
#: N in 10..50 (or ..100) with 50 queries per N, two replicates, and a
#: wall-clock budget of up to 9 N^2 seconds; these settings preserve the
#: comparisons' shape at roughly 1/1000 of the compute.  N stays at 20+
#: because below that the search spaces are easy enough that the methods
#: (and the chooseNext criteria) collapse into ties.
#: ``units_per_n2 = 20`` is the calibration point where the paper's
#: AGI-then-IAI crossover appears: below it IAI never exhausts its
#: augmentation starts; far above it IAI dominates from the start.
BENCH_SCALE = dict(
    n_values=(20, 30),
    queries_per_n=8,
    units_per_n2=20.0,
    replicates=1,
    seed=2026,
)


def save_and_print(name: str, text: str) -> Path:
    """Print a rendered table/series and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    return path


def format_paper_reference(rows: list[str]) -> str:
    """Format the paper's published numbers for side-by-side reading."""
    return "\n".join(["Paper reference:"] + [f"  {row}" for row in rows])


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark series as ``BENCH_<name>.json``.

    Stable key order and indentation keep the files diffable across PRs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def measure_incremental(
    n_joins: int, n_moves: int, seed: int = 2026
) -> dict:
    """Time full vs. incremental vs. incremental+pruning plan costing.

    Replays one identical seeded random-move walk in all three modes, so
    the per-mode evaluations/sec figures compare the same work:

    * ``full`` — ``model.plan_cost`` per candidate (the reference oracle);
    * ``incremental`` — prefix-cached suffix recosting, no bound;
    * ``pruned`` — prefix caching plus an upper bound at the incumbent's
      cost, the bound iterative improvement uses.

    Returns a dict ready for :func:`write_bench_json`, including the
    ``speedup`` of each incremental mode over full re-costing.
    """
    import random

    from repro.cost.incremental import IncrementalEvaluator
    from repro.cost.memory import MainMemoryCostModel
    from repro.core.moves import MoveSet
    from repro.plans.validity import random_valid_order
    from repro.workloads.benchmarks import DEFAULT_SPEC
    from repro.workloads.generator import generate_query

    graph = generate_query(DEFAULT_SPEC, n_joins=n_joins, seed=seed).graph
    model = MainMemoryCostModel()
    move_set = MoveSet()

    # Pre-generate one greedy walk (accept improvements, like II) so every
    # mode replays identical (current, candidate, first_changed) triples.
    rng = random.Random(seed)
    current = random_valid_order(graph, rng)
    steps = []  # (current, candidate, first_changed, incumbent_cost)
    cost = model.plan_cost(current, graph)
    for _ in range(n_moves):
        move, candidate = move_set.random_valid_move(current, graph, rng)
        steps.append((current, candidate, move.first_changed, cost))
        candidate_cost = model.plan_cost(candidate, graph)
        if candidate_cost < cost:
            current, cost = candidate, candidate_cost

    def time_full() -> tuple[float, int]:
        t0 = time.perf_counter()
        for _, candidate, _, _ in steps:
            model.plan_cost(candidate, graph)
        return time.perf_counter() - t0, len(steps) * graph.n_joins

    def time_engine(pruned: bool) -> tuple[float, int]:
        engine = IncrementalEvaluator(graph, model)
        joins = 0
        t0 = time.perf_counter()
        for current, candidate, first_changed, incumbent in steps:
            engine.prime(current.positions)
            bound = incumbent if pruned else None
            _, walked = engine.evaluate(candidate.positions, bound, first_changed)
            joins += walked
        return time.perf_counter() - t0, joins

    modes = {}
    full_seconds, full_joins = time_full()
    for mode, (seconds, joins) in (
        ("full", (full_seconds, full_joins)),
        ("incremental", time_engine(pruned=False)),
        ("pruned", time_engine(pruned=True)),
    ):
        evals_per_sec = len(steps) / seconds if seconds > 0 else float("inf")
        modes[mode] = {
            "seconds": round(seconds, 6),
            "evaluations": len(steps),
            "joins_walked": joins,
            "evaluations_per_sec": round(evals_per_sec, 1),
            "speedup_vs_full": round(full_seconds / seconds, 3)
            if seconds > 0
            else float("inf"),
        }
    return {
        "n_joins": n_joins,
        "n_moves": n_moves,
        "seed": seed,
        "modes": modes,
    }


def _smoke_main(argv: list[str] | None = None) -> int:
    """The perf smoke check: a reduced incremental microbench run."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Perf smoke check for the incremental evaluation engine."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the reduced incremental microbench (the only mode)",
    )
    parser.add_argument(
        "--n-joins", type=int, default=30, help="query size (default 30)"
    )
    parser.add_argument(
        "--moves", type=int, default=300, help="moves to replay (default 300)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write results/BENCH_incremental_smoke.json",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke")
    result = measure_incremental(args.n_joins, args.moves)
    for mode, stats in result["modes"].items():
        print(
            f"{mode:>11}: {stats['evaluations_per_sec']:>10.1f} evals/s "
            f"({stats['joins_walked']} joins walked, "
            f"{stats['speedup_vs_full']:.2f}x vs full)"
        )
    if args.json:
        path = write_bench_json("incremental_smoke", result)
        print(f"wrote {path}")
    speedup = result["modes"]["pruned"]["speedup_vs_full"]
    if speedup < 1.0:
        print(f"SMOKE FAIL: pruned mode slower than full ({speedup:.2f}x)")
        return 1
    print("SMOKE OK")
    return 0


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    raise SystemExit(_smoke_main())
