"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures at a
reduced-but-shape-preserving scale, prints the same rows/series the paper
reports, and writes the rendering to ``benchmarks/results/`` so the output
survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Scaled-down experiment size shared by the benches.  The paper uses
#: N in 10..50 (or ..100) with 50 queries per N, two replicates, and a
#: wall-clock budget of up to 9 N^2 seconds; these settings preserve the
#: comparisons' shape at roughly 1/1000 of the compute.  N stays at 20+
#: because below that the search spaces are easy enough that the methods
#: (and the chooseNext criteria) collapse into ties.
#: ``units_per_n2 = 20`` is the calibration point where the paper's
#: AGI-then-IAI crossover appears: below it IAI never exhausts its
#: augmentation starts; far above it IAI dominates from the start.
BENCH_SCALE = dict(
    n_values=(20, 30),
    queries_per_n=8,
    units_per_n2=20.0,
    replicates=1,
    seed=2026,
)


def save_and_print(name: str, text: str) -> Path:
    """Print a rendered table/series and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    return path


def format_paper_reference(rows: list[str]) -> str:
    """Format the paper's published numbers for side-by-side reading."""
    return "\n".join(["Paper reference:"] + [f"  {row}" for row in rows])
