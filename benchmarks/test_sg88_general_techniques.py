"""SG88 — the general combinatorial techniques comparison.

The announced reproduction target, Swami & Gupta's SIGMOD 1988
*Optimization of Large Join Queries*, compared general combinatorial
optimization techniques on this problem and found **iterative
improvement the method of choice**, with simulated annealing next and
undirected baselines (random sampling, perturbation walk) behind.  The
supplied 1989 text builds directly on that result ("It was shown that
among the techniques compared, iterative improvement is the method of
choice.  The simulated annealing algorithm ... was the next best
method.").  This bench regenerates that comparison.
"""

from repro.experiments.report import render_experiment
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark

from bench_utils import BENCH_SCALE, save_and_print

_METHODS = ("II", "SA", "WALK", "RANDOM")


def run_sg88():
    queries = generate_benchmark(
        DEFAULT_SPEC,
        n_values=BENCH_SCALE["n_values"],
        queries_per_n=BENCH_SCALE["queries_per_n"],
        seed=BENCH_SCALE["seed"],
    )
    config = ExperimentConfig(
        methods=_METHODS,
        time_factors=(1.5, 3.0, 9.0),
        units_per_n2=BENCH_SCALE["units_per_n2"],
        replicates=BENCH_SCALE["replicates"],
        seed=BENCH_SCALE["seed"],
    )
    return run_experiment(queries, config)


def test_sg88_general_techniques(benchmark):
    result = benchmark.pedantic(run_sg88, rounds=1, iterations=1)
    text = render_experiment(
        "SG88: general combinatorial techniques (mean scaled cost)", result
    )
    save_and_print("sg88_general_techniques", text)

    at_nine = {m: result.at(m, 9.0) for m in _METHODS}
    # II is the method of choice ...
    assert at_nine["II"] == min(at_nine.values())
    # ... SA beats the undirected baselines ...
    assert at_nine["SA"] <= min(at_nine["WALK"], at_nine["RANDOM"]) * 1.05
    # ... and the baselines trail II by a clear margin.
    assert min(at_nine["WALK"], at_nine["RANDOM"]) >= at_nine["II"] * 1.2
