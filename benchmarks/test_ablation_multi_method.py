"""Ablation — multiple join methods (the paper's §7 extension).

The paper optimizes with the hash join only and names "incorporating
join methods other than the hash join method" as future work.  This
ablation runs IAI under the hash-only model and under a multi-method
model (hash + nested loop + sort-merge, each join priced at its cheapest
method) and reports how much the extra methods save.
"""

from repro.core.optimizer import optimize
from repro.cost.memory import MainMemoryCostModel
from repro.cost.methods import MultiMethodCostModel
from repro.experiments.report import render_matrix
from repro.utils.rng import derive_seed
from repro.workloads.benchmarks import DEFAULT_SPEC, generate_benchmark

from bench_utils import BENCH_SCALE, save_and_print


def run_multi_method_ablation():
    queries = generate_benchmark(
        DEFAULT_SPEC,
        n_values=(15, 25),
        queries_per_n=6,
        seed=BENCH_SCALE["seed"],
    )
    hash_model = MainMemoryCostModel()
    multi_model = MultiMethodCostModel()
    savings = []
    method_shares: dict[str, int] = {}
    for query in queries:
        seed = derive_seed(BENCH_SCALE["seed"], query.name, "multi")
        hash_result = optimize(
            query, "IAI", model=hash_model, time_factor=9.0,
            units_per_n2=BENCH_SCALE["units_per_n2"], seed=seed,
        )
        multi_result = optimize(
            query, "IAI", model=multi_model, time_factor=9.0,
            units_per_n2=BENCH_SCALE["units_per_n2"], seed=seed,
        )
        # Re-price the hash-only plan under the multi-method model so the
        # two costs are in the same units.
        hash_repriced = multi_model.plan_cost(hash_result.order, query.graph)
        savings.append(multi_result.cost / hash_repriced)
        for name in multi_model.chosen_methods(multi_result.order, query.graph):
            method_shares[name] = method_shares.get(name, 0) + 1
    mean_saving = sum(savings) / len(savings)
    return mean_saving, method_shares


def test_multi_method_ablation(benchmark):
    mean_ratio, shares = benchmark.pedantic(
        run_multi_method_ablation, rounds=1, iterations=1
    )
    total = sum(shares.values())
    text = render_matrix(
        "Ablation: multi-method vs hash-only plans (IAI, 9N^2)",
        row_labels=["multi/hash cost ratio"]
        + [f"share: {name}" for name in sorted(shares)],
        column_labels=["value"],
        values=[[mean_ratio]] + [[shares[name] / total] for name in sorted(shares)],
        row_header="metric",
    )
    save_and_print("ablation_multi_method", text)

    # Per-join best-method pricing can only help.
    assert mean_ratio <= 1.0 + 1e-9
    # The hash join remains the workhorse; the extra methods win some
    # joins (usually small ones via nested loops).
    assert max(shares, key=shares.get) in ("memory", "nested-loop")
